// Package rnknn's benchmark suite regenerates every table and figure of the
// paper's evaluation: each Benchmark below runs one experiment id from
// internal/exp at full harness scale and prints its tables. Networks and
// indexes are cached process-wide, so a full `go test -bench=.` builds each
// index once, then measures (the index-construction experiments fig8/fig26
// time the builds themselves).
//
// Micro-benchmarks at the bottom cover the Section 6.2 data-structure
// choices (priority queue without decrease-key; bit-array settled
// container) independently of any kNN method.
package rnknn

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"rnknn/internal/bitset"
	"rnknn/internal/exp"
	"rnknn/internal/gen"
	"rnknn/internal/pqueue"
	api "rnknn/pkg/rnknn"
)

// benchCfg is the full-scale harness configuration used by every experiment
// benchmark. Lower Queries via -short if needed.
var benchCfg = exp.Config{Queries: 100, Scale: 1.0, Seed: 42}

var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(id, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			for _, t := range tables {
				fmt.Println(t)
			}
		}
	}
}

func BenchmarkTable1Datasets(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkTable2Objects(b *testing.B)         { benchExperiment(b, "table2") }
func BenchmarkFig4IERVariants(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig6DistanceMatrix(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7INEAblation(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8IndexBuild(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9NetworkSize(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10VaryingK(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11VaryingDensity(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFig12Clusters(b *testing.B)         { benchExperiment(b, "fig12") }
func BenchmarkFig13RealPOIs(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFig14MinObjDist(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15RealPOIsK(b *testing.B)        { benchExperiment(b, "fig15") }
func BenchmarkFig16OriginalSettings(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17TravelTime(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkFig18ObjectIndexes(b *testing.B)    { benchExperiment(b, "fig18") }
func BenchmarkFig19DBENN(b *testing.B)            { benchExperiment(b, "fig19") }
func BenchmarkFig20Deg2Chains(b *testing.B)       { benchExperiment(b, "fig20") }
func BenchmarkFig22LeafSearch(b *testing.B)       { benchExperiment(b, "fig22") }
func BenchmarkFig23IERTravelTime(b *testing.B)    { benchExperiment(b, "fig23") }
func BenchmarkFig24TravelTimeNW(b *testing.B)     { benchExperiment(b, "fig24") }
func BenchmarkFig25TravelTimePOIs(b *testing.B)   { benchExperiment(b, "fig25") }
func BenchmarkFig26TravelTimeBuild(b *testing.B)  { benchExperiment(b, "fig26") }
func BenchmarkTable5Ranking(b *testing.B)         { benchExperiment(b, "table5") }

// --- Section 6.2 micro-ablations ---

// BenchmarkPQueueDuplicates measures the paper's recommended duplicate-
// tolerant binary heap under a Dijkstra-like push/pop mix.
func BenchmarkPQueueDuplicates(b *testing.B) {
	q := pqueue.NewQueue(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Reset()
		for j := 0; j < 1000; j++ {
			q.Push(int32(j%257), int64((j*2654435761)%100000))
			if j%3 == 0 && !q.Empty() {
				q.Pop()
			}
		}
		for !q.Empty() {
			q.Pop()
		}
	}
}

// BenchmarkPQueueDecreaseKey measures the indexed decrease-key heap on the
// same mix (the choice the paper rejects for road networks).
func BenchmarkPQueueDecreaseKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		q := pqueue.NewIndexedQueue(1024)
		for j := 0; j < 1000; j++ {
			q.PushOrDecrease(int32(j%257), int64((j*2654435761)%100000))
			if j%3 == 0 && !q.Empty() {
				q.Pop()
			}
		}
		for !q.Empty() {
			q.Pop()
		}
	}
}

// BenchmarkSettledBitset and BenchmarkSettledMap compare the settled-vertex
// containers of Section 6.2 choice 2 over a fixed visit pattern.
func BenchmarkSettledBitset(b *testing.B) {
	s := bitset.New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		for j := uint32(0); j < 20000; j++ {
			v := int32((j * 2654435761) & (1<<20 - 1))
			if !s.Get(v) {
				s.Set(v)
			}
		}
	}
}

func BenchmarkSettledMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := make(map[int32]bool)
		for j := uint32(0); j < 20000; j++ {
			v := int32((j * 2654435761) & (1<<20 - 1))
			if !s[v] {
				s[v] = true
			}
		}
	}
}

// --- Public API: pooled concurrent query throughput ---

// benchDB lazily opens one shared DB (G-tree, PHL and INE over a ~7k-vertex
// network) reused by every DB benchmark, mirroring how the experiment
// harness caches indexes.
var benchDB = struct {
	once sync.Once
	db   *api.DB
	qs   []int32
}{}

func sharedBenchDB(b *testing.B) (*api.DB, []int32) {
	benchDB.once.Do(func() {
		g := gen.Network(gen.NetworkSpec{Name: "dbbench", Rows: 48, Cols: 60, Seed: 13})
		db, err := api.Open(g,
			api.WithMethods(api.INE, api.IERPHL, api.Gtree),
			api.WithObjects(api.DefaultCategory, gen.Uniform(g, 0.001, 21)))
		if err != nil {
			panic(err)
		}
		benchDB.db = db
		benchDB.qs = gen.QueryVertices(g, 256, 17)
	})
	if benchDB.db == nil {
		b.Fatal("shared bench DB failed to open")
	}
	return benchDB.db, benchDB.qs
}

// BenchmarkDBConcurrentKNN measures pooled-session throughput of the public
// db.KNN under RunParallel, one sub-benchmark per method, so future PRs can
// track how the session pool scales with parallelism (compare ns/op across
// -cpu values).
func BenchmarkDBConcurrentKNN(b *testing.B) {
	db, qs := sharedBenchDB(b)
	ctx := context.Background()
	for _, m := range db.Methods() {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			var next atomic.Uint64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					q := qs[next.Add(1)%uint64(len(qs))]
					if _, err := db.KNN(ctx, q, 10, api.WithMethod(m)); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkDBConcurrentRange is the range-query companion (always INE).
func BenchmarkDBConcurrentRange(b *testing.B) {
	db, qs := sharedBenchDB(b)
	ctx := context.Background()
	b.ReportAllocs()
	var next atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := qs[next.Add(1)%uint64(len(qs))]
			if _, err := db.Range(ctx, q, 20000); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkDBConcurrentMixedSwap stresses the contended path the API is
// designed for: parallel kNN queries racing a category re-registration
// every 64 operations.
func BenchmarkDBConcurrentMixedSwap(b *testing.B) {
	db, qs := sharedBenchDB(b)
	g := db.Graph()
	setA := gen.Uniform(g, 0.001, 21)
	setB := gen.Uniform(g, 0.002, 34)
	ctx := context.Background()
	b.ReportAllocs()
	var next atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			if i%64 == 0 {
				set := setA
				if (i/64)%2 == 1 {
					set = setB
				}
				if err := db.RegisterObjects(api.DefaultCategory, set); err != nil {
					b.Error(err)
					return
				}
				continue
			}
			q := qs[i%uint64(len(qs))]
			if _, err := db.KNN(ctx, q, 10, api.WithMethod(api.Gtree)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// --- Public API: allocation trajectory ---

// allocDB lazily opens the zero-allocation benchmark DB: a small network so
// every required method — including quadratic-build SILC (DisBrw) — is
// cheap to construct, with a dense-enough default category that k=10
// queries always fill.
var allocDB = struct {
	once sync.Once
	db   *api.DB
	qs   []int32
}{}

func sharedAllocDB(b *testing.B) (*api.DB, []int32) {
	allocDB.once.Do(func() {
		g := gen.Network(gen.NetworkSpec{Name: "dballoc", Rows: 24, Cols: 24, Seed: 19})
		db, err := api.Open(g,
			api.WithMethods(api.INE, api.IERPHL, api.IERCH, api.Gtree, api.ROAD, api.DisBrw),
			api.WithObjects(api.DefaultCategory, gen.Uniform(g, 0.05, 27)))
		if err != nil {
			panic(err)
		}
		allocDB.db = db
		allocDB.qs = gen.QueryVertices(g, 128, 31)
	})
	if allocDB.db == nil {
		b.Fatal("shared alloc bench DB failed to open")
	}
	return allocDB.db, allocDB.qs
}

// BenchmarkDBKNNAllocs is the allocation surface of the perf trajectory:
// warm-session db.KNNAppend into a caller-reused buffer, one sub-benchmark
// per method. ReportAllocs makes allocs/op land in BENCH_pr.json (the CI
// bench job runs with -benchmem as well), and the companion regression
// tests (TestDBKNNAppendZeroAllocs, core's TestWarmSessionKNNZeroAllocs)
// hard-fail if any of these ever report a steady-state allocation again.
func BenchmarkDBKNNAllocs(b *testing.B) {
	db, qs := sharedAllocDB(b)
	ctx := context.Background()
	for _, m := range db.Methods() {
		b.Run("method="+m.String(), func(b *testing.B) {
			opt := api.WithMethod(m)
			var buf []api.Result
			var err error
			for _, q := range qs[:16] { // warm the pooled session's scratch
				if buf, err = db.KNNAppend(ctx, q, 10, buf[:0], opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if buf, err = db.KNNAppend(ctx, qs[i%len(qs)], 10, buf[:0], opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Public API: batch execution and the method × k × density grid ---

// gridDB lazily opens one shared DB over the largest benchmark network
// (~11.5k vertices) with INE, IER-PHL and G-tree plus one object category
// per benchmarked density; shared by the grid and batch benchmarks.
var gridDB = struct {
	once sync.Once
	db   *api.DB
	qs   []int32
}{}

// gridDensities are the object densities the grid benchmark sweeps; each
// is registered as category "d<density>".
var gridDensities = []float64{0.001, 0.01}

func sharedGridDB(b *testing.B) (*api.DB, []int32) {
	gridDB.once.Do(func() {
		g := gen.Network(gen.NetworkSpec{Name: "dbgrid", Rows: 96, Cols: 120, Seed: 29})
		opts := []api.Option{api.WithMethods(api.INE, api.IERPHL, api.Gtree)}
		for i, d := range gridDensities {
			opts = append(opts, api.WithObjects(fmt.Sprintf("d%g", d), gen.Uniform(g, d, int64(50+i))))
		}
		db, err := api.Open(g, opts...)
		if err != nil {
			panic(err)
		}
		gridDB.db = db
		gridDB.qs = gen.QueryVertices(g, 256, 23)
	})
	if gridDB.db == nil {
		b.Fatal("shared grid DB failed to open")
	}
	return gridDB.db, gridDB.qs
}

// BenchmarkDBKNNGrid sweeps method × k × density on one network — the
// ns/op surface behind the adaptive planner's regime table. CI runs it
// with -benchtime=1x and folds the output into BENCH_pr.json (see
// cmd/bench2json), so the per-regime trajectory accumulates across PRs.
func BenchmarkDBKNNGrid(b *testing.B) {
	db, qs := sharedGridDB(b)
	ctx := context.Background()
	for _, m := range db.Methods() {
		for _, k := range []int{1, 10, 50} {
			for _, d := range gridDensities {
				b.Run(fmt.Sprintf("method=%s/k=%d/density=%g", m, k, d), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						q := qs[i%len(qs)]
						if _, err := db.KNN(ctx, q, k, api.WithMethod(m), api.WithCategory(fmt.Sprintf("d%g", d))); err != nil {
							b.Fatal(err)
						}
					}
					// cmd/fitcost needs the network size per record to fit the
					// cost model; bench2json keeps custom units in its metrics
					// map, no parser change needed.
					b.ReportMetric(float64(db.Graph().NumVertices()), "nv")
				})
			}
		}
	}
}

// batchQueryCount is the batch-vs-sequential comparison size: one
// benchmark op answers this many queries either way.
const batchQueryCount = 64

// BenchmarkDBBatch answers 64 queries per op through db.Batch on the
// largest benchmark network: sessions are checked out once per worker and
// the queries fan across the pool. Compare ns/op against
// BenchmarkDBSequential — batch throughput must be at least the
// sequential loop's.
func BenchmarkDBBatch(b *testing.B) {
	db, qs := sharedGridDB(b)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		batch := db.Batch()
		for j := 0; j < batchQueryCount; j++ {
			batch.AddKNN(qs[(i*batchQueryCount+j)%len(qs)], 10, api.WithMethod(api.Gtree), api.WithCategory("d0.001"))
		}
		results, err := batch.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkDBSequential is BenchmarkDBBatch's baseline: the same 64
// queries as a plain one-at-a-time loop on one goroutine.
func BenchmarkDBSequential(b *testing.B) {
	db, qs := sharedGridDB(b)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batchQueryCount; j++ {
			q := qs[(i*batchQueryCount+j)%len(qs)]
			if _, err := db.KNN(ctx, q, 10, api.WithMethod(api.Gtree), api.WithCategory("d0.001")); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// batchClusteredOnce registers the sparse category BenchmarkDBBatchClustered
// queries on the shared churn network: ~110 objects over ~110k vertices, the
// sparse regime where a single k=10 INE query costs well over the planner's
// sharing crossover.
var batchClusteredOnce sync.Once

// BenchmarkDBBatchClustered is the shared-expansion acceptance benchmark: 64
// k=10 queries packed into one spatial block of the ~110k-vertex network,
// answered per op either by shared multi-source expansions (mode=shared) or
// by the pooled fan-out baseline (mode=fanout). The answers must match
// exactly, and the shared mode reports its speedup over fan-out and
// hard-fails below 1.5x so a regression in the shared frontier can't land
// silently. CI folds both modes into BENCH_pr.json; cmd/fitcost consumes
// the pair (via the "members" metric) to fit the cost model's shared-cost
// coefficient.
func BenchmarkDBBatchClustered(b *testing.B) {
	db, _ := sharedChurnDB(b)
	g := db.Graph()
	batchClusteredOnce.Do(func() {
		if err := db.RegisterObjects("batch-sparse", gen.Uniform(g, 0.001, 47)); err != nil {
			panic(err)
		}
	})
	// Consecutive vertex ids around the network middle: spatially adjacent
	// on the generated grids, so the grouping planner sees same-leaf
	// clusters — the hot-cell shape shared expansion exists for.
	queries := make([]int32, batchQueryCount)
	base := int32(g.NumVertices() / 2)
	for i := range queries {
		queries[i] = base + int32(i)
	}
	ctx := context.Background()
	runOnce := func(b *testing.B, mode api.SharedMode) []api.BatchResult {
		batch := db.Batch().SharedExpansion(mode)
		for _, q := range queries {
			batch.AddKNN(q, 10, api.WithMethod(api.INE), api.WithCategory("batch-sparse"))
		}
		results, err := batch.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		return results
	}
	// Exactness gate before any timing: member for member, the shared
	// expansion must return the fan-out answers.
	fanRes := runOnce(b, api.SharedOff)
	shRes := runOnce(b, api.SharedOn)
	for i := range fanRes {
		if !api.SameResults(fanRes[i].Results, shRes[i].Results) {
			b.Fatalf("query %d: shared %v != fanout %v", queries[i],
				api.FormatResults(shRes[i].Results), api.FormatResults(fanRes[i].Results))
		}
	}
	var fanoutNs, sharedNs float64
	bench := func(mode api.SharedMode, ns *float64) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runOnce(b, mode)
			}
			*ns = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(float64(batchQueryCount), "members")
		}
	}
	b.Run("mode=fanout", bench(api.SharedOff, &fanoutNs))
	b.Run("mode=shared", func(b *testing.B) {
		bench(api.SharedOn, &sharedNs)(b)
		if fanoutNs > 0 && sharedNs > 0 {
			speedup := fanoutNs / sharedNs
			b.ReportMetric(speedup, "speedup")
			if speedup < 1.5 {
				b.Fatalf("shared expansion only %.2fx faster than fan-out, want >= 1.5x", speedup)
			}
		}
	})
}

// BenchmarkDBKNNSeqFirstResult measures streaming's reason to exist: time
// to the first neighbor via KNNSeq against the full buffered KNN answer,
// on the expansion method where the gap is widest.
func BenchmarkDBKNNSeqFirstResult(b *testing.B) {
	db, qs := sharedGridDB(b)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		got := 0
		for _, err := range db.KNNSeq(ctx, q, 50, api.WithMethod(api.INE), api.WithCategory("d0.001")) {
			if err != nil {
				b.Fatal(err)
			}
			got++
			break
		}
		if got != 1 {
			b.Fatal("no first result")
		}
	}
}

// BenchmarkNetworkGeneration tracks the generator itself so dataset setup
// cost is visible in benchmark output.
func BenchmarkNetworkGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := gen.Network(gen.NetworkSpec{Name: "bench", Rows: 48, Cols: 60, Seed: int64(i)})
		if g.NumVertices() == 0 {
			b.Fatal("empty network")
		}
	}
}

// churnDB lazily opens the object-churn benchmark DB: a ~110k-vertex
// network (large enough to hold the 100k-object category) with one method
// per maintainer family — INE (object-set membership), IER-Dijk (dynamic
// R-tree), G-tree (occurrence list), ROAD (association directory).
var churnDB = struct {
	once sync.Once
	db   *api.DB
	sets map[int][]int32
}{}

// churnSizes are the object-set scales BenchmarkObjectChurn compares
// incremental updates against full re-registration at.
var churnSizes = []int{1000, 10000, 100000}

func sharedChurnDB(b *testing.B) (*api.DB, map[int][]int32) {
	churnDB.once.Do(func() {
		g := gen.Network(gen.NetworkSpec{Name: "churnbench", Rows: 230, Cols: 230, Seed: 29})
		db, err := api.Open(g, api.WithMethods(api.INE, api.IERDijk, api.Gtree, api.ROAD))
		if err != nil {
			panic(err)
		}
		churnDB.db = db
		churnDB.sets = map[int][]int32{}
		n := g.NumVertices()
		for _, size := range churnSizes {
			// Evenly spaced object vertices, skipping vertex 0 (kept free as
			// the churned spare).
			verts := make([]int32, size)
			for i := range verts {
				verts[i] = int32(1 + i*(n-1)/size)
			}
			churnDB.sets[size] = verts
			if err := db.RegisterObjects(fmt.Sprintf("churn-%d", size), verts); err != nil {
				panic(err)
			}
		}
	})
	if churnDB.db == nil {
		b.Fatal("shared churn DB failed to open")
	}
	return churnDB.db, churnDB.sets
}

// monitorBenchOnce registers the sparse category BenchmarkMonitorRoute
// monitors on the shared churn network (~110k vertices, ~55 objects — few
// enough that the (k+1)-gap is wide, but well above k so the safe-region
// bound is doing real work rather than trivially holding forever).
var monitorBenchOnce sync.Once

// BenchmarkMonitorRoute drives db.Monitor along a 512-step edge walk and
// reports, beyond ns/op, the two numbers the continuous-query design is
// about: ns/step and avoided-ratio — the fraction of steps the per-step
// safe-region check answered without re-running a kNN search. CI folds
// both into BENCH_pr.json (cmd/bench2json keeps extra ReportMetric units
// in a "metrics" map), and the benchmark hard-fails if the ratio drops
// below 60% so a regression in the drift accounting can't land silently.
func BenchmarkMonitorRoute(b *testing.B) {
	db, _ := sharedChurnDB(b)
	g := db.Graph()
	monitorBenchOnce.Do(func() {
		if err := db.RegisterObjects("monitor", gen.Uniform(g, 0.0005, 43)); err != nil {
			panic(err)
		}
	})
	// A clustered route: an edge walk around the network's middle — the
	// localized moving-query shape the safe-region check is built for.
	route := make([]int32, 512)
	route[0] = int32(g.NumVertices() / 2)
	for i := 1; i < len(route); i++ {
		targets, _ := g.Neighbors(route[i-1])
		route[i] = targets[i%len(targets)]
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var steps, avoided int
	for i := 0; i < b.N; i++ {
		for u, err := range db.Monitor(ctx, route, 10, api.WithCategory("monitor"), api.WithMethod(api.Gtree)) {
			if err != nil {
				b.Fatal(err)
			}
			steps++
			if u.Refresh == api.MonitorRefreshNone {
				avoided++
			}
		}
	}
	elapsed := b.Elapsed()
	b.StopTimer()
	ratio := float64(avoided) / float64(steps)
	b.ReportMetric(ratio, "avoided-ratio")
	b.ReportMetric(float64(elapsed.Nanoseconds())/float64(steps), "ns/step")
	if ratio < 0.6 {
		b.Fatalf("safe-region check avoided only %.0f%% of %d steps, want >= 60%%", 100*ratio, steps)
	}
}

// BenchmarkObjectChurn measures what one object change costs at 1k/10k/100k
// objects: mode=incremental alternates a single-vertex InsertObjects /
// RemoveObjects (the epoch-versioned delta path — copy-on-write clones plus
// O(delta) maintainer work), mode=reregister pays the pre-epoch cost model,
// a full RegisterObjects rebuild of every derived object index. The
// incremental path must stay >= 10x faster than re-registration from 10k
// objects up; CI folds both modes into BENCH_pr.json so the ratio is
// tracked per PR.
func BenchmarkObjectChurn(b *testing.B) {
	db, sets := sharedChurnDB(b)
	const spare int32 = 0 // never part of the registered sets
	for _, size := range churnSizes {
		cat := fmt.Sprintf("churn-%d", size)
		b.Run(fmt.Sprintf("mode=incremental/objects=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				if i%2 == 0 {
					err = db.InsertObjects(cat, []int32{spare})
				} else {
					err = db.RemoveObjects(cat, []int32{spare})
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("mode=reregister/objects=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := db.RegisterObjects(cat, sets[size]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Snapshot open paths: verified decode vs zero-copy mmap ---

// BenchmarkOpenFromSnapshot is the warm-start acceptance benchmark: one
// self-contained snapshot of the shared bench DB (graph + G-tree + PHL
// indexes), opened per op either through the fully verified streaming
// decode (mode=decode) or through the mmap zero-copy path (mode=mmap,
// rnknn.OpenSnapshotFile). Answers must match the building DB before any
// timing. Both modes report open-ms and the snapshot size; the mmap mode
// additionally reports its speedup over decode and hard-fails below 10x,
// so the "warm start costs page faults, not a decode of every byte" claim
// is enforced on every PR. CI folds both modes into BENCH_pr.json.
func BenchmarkOpenFromSnapshot(b *testing.B) {
	db, qs := sharedBenchDB(b)
	g := db.Graph()
	methods := []api.Method{api.INE, api.IERPHL, api.Gtree}
	path := filepath.Join(b.TempDir(), "bench.rnks")
	if err := db.SaveIndexesFile(path); err != nil {
		b.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	snapMB := float64(len(data)) / (1 << 20)

	// Exactness gate before any timing: both open paths must load (not
	// rebuild) every index and answer exactly like the DB that built them.
	withObjs := api.WithObjects(api.DefaultCategory, gen.Uniform(g, 0.001, 21))
	checkOpen := func(open func() (*api.DB, error)) {
		b.Helper()
		d, err := open()
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		for name, ix := range d.Stats().Indexes {
			if !ix.Loaded {
				b.Fatalf("index %s rebuilt instead of loaded", name)
			}
		}
		ctx := context.Background()
		for _, m := range methods {
			for _, q := range qs[:8] {
				want, err := db.KNN(ctx, q, 10, api.WithMethod(m))
				if err != nil {
					b.Fatal(err)
				}
				got, err := d.KNN(ctx, q, 10, api.WithMethod(m))
				if err != nil {
					b.Fatal(err)
				}
				if !api.SameResults(got, want) {
					b.Fatalf("%v q=%d: reopened DB answers differently", m, q)
				}
			}
		}
	}
	checkOpen(func() (*api.DB, error) {
		return api.OpenFromSnapshot(g, bytes.NewReader(data), api.WithMethods(methods...), withObjs)
	})
	checkOpen(func() (*api.DB, error) {
		return api.OpenSnapshotFile(path, api.WithMethods(methods...), withObjs)
	})

	var decodeNs, mmapNs float64
	b.Run("mode=decode", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, err := api.OpenFromSnapshot(g, bytes.NewReader(data), api.WithMethods(methods...))
			if err != nil {
				b.Fatal(err)
			}
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}
		}
		decodeNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(decodeNs/1e6, "open-ms")
		b.ReportMetric(snapMB, "snap-MB")
	})
	b.Run("mode=mmap", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, err := api.OpenSnapshotFile(path, api.WithMethods(methods...))
			if err != nil {
				b.Fatal(err)
			}
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}
		}
		mmapNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(mmapNs/1e6, "open-ms")
		b.ReportMetric(snapMB, "snap-MB")
		if decodeNs > 0 && mmapNs > 0 {
			speedup := decodeNs / mmapNs
			b.ReportMetric(speedup, "speedup")
			if speedup < 10 {
				b.Fatalf("mmap open only %.1fx faster than decode, want >= 10x", speedup)
			}
		}
	})
}
