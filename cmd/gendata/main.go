// Command gendata generates the synthetic dataset ladder and prints its
// statistics (the Table 1 / Table 2 analogues), for inspecting what the
// experiment harness runs on.
//
// It also imports real road networks from the 9th DIMACS Implementation
// Challenge (see cmd/README.md for download instructions):
//
//	gendata -dimacs-gr USA-road-d.NY.gr.gz -dimacs-co USA-road-d.NY.co.gz -o NY.rnkn
//
// The written .rnkn graph file feeds buildindex -graph and from there the
// sharded serving path.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rnknn/internal/cliutil"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
)

func main() {
	var (
		name     = flag.String("network", "", "single ladder network to describe (default: all)")
		pois     = flag.Bool("pois", false, "also list POI categories per network")
		dimacsGr = flag.String("dimacs-gr", "", "DIMACS .gr[.gz] graph file to import (with -dimacs-co and -o)")
		dimacsCo = flag.String("dimacs-co", "", "DIMACS .co[.gz] coordinate file to import")
		outPath  = flag.String("o", "", "output .rnkn graph file for -dimacs import")
		outName  = flag.String("name", "", "graph name for -dimacs import (default: output file base name)")
	)
	flag.Parse()

	if *dimacsGr != "" || *dimacsCo != "" {
		if *dimacsGr == "" || *dimacsCo == "" || *outPath == "" {
			cliutil.UsageExit("", "-dimacs-gr, -dimacs-co, and -o must be given together")
		}
		importDIMACS(*dimacsGr, *dimacsCo, *outPath, *outName)
		return
	}

	specs := gen.Ladder()
	if *name != "" {
		spec, ok := gen.LadderSpec(*name)
		if !ok {
			cliutil.UsageExit("", "unknown network %q; ladder: %v", *name, names(specs))
		}
		specs = []gen.NetworkSpec{spec}
	}
	fmt.Printf("%-5s %10s %10s %12s %12s\n", "name", "|V|", "|E|", "deg<=2", "fast edges")
	for _, spec := range specs {
		g := gen.Network(spec)
		fmt.Printf("%-5s %10d %10d %11.1f%% %11.1f%%\n",
			spec.Name, g.NumVertices(), g.NumEdges()/2,
			g.ChainFraction()*100, fastEdgeFraction(g)*100)
		if *pois {
			for _, c := range gen.POICategories(g, 42) {
				fmt.Println("   ", gen.Describe(c.Name, g, c.Vertices))
			}
		}
	}
}

// importDIMACS converts a DIMACS .gr/.co pair to the library's graph file
// format.
func importDIMACS(grPath, coPath, outPath, name string) {
	if name == "" {
		base := outPath
		if i := len(base) - len(".rnkn"); i > 0 && base[i:] == ".rnkn" {
			base = base[:i]
		}
		for i := len(base) - 1; i >= 0; i-- {
			if base[i] == '/' {
				base = base[i+1:]
				break
			}
		}
		name = base
	}
	grF, err := os.Open(grPath)
	if err != nil {
		fatal("dimacs:", err)
	}
	defer grF.Close()
	coF, err := os.Open(coPath)
	if err != nil {
		fatal("dimacs:", err)
	}
	defer coF.Close()
	start := time.Now()
	g, err := gen.ReadDIMACS(grF, coF, name)
	if err != nil {
		fatal("dimacs:", err)
	}
	out, err := os.Create(outPath)
	if err != nil {
		fatal("dimacs:", err)
	}
	if err := g.Write(out); err != nil {
		fatal("dimacs: write:", err)
	}
	if err := out.Close(); err != nil {
		fatal("dimacs: write:", err)
	}
	fmt.Printf("imported %s: |V|=%d |E|=%d in %s -> %s\n",
		name, g.NumVertices(), g.NumEdges()/2, time.Since(start).Round(time.Millisecond), outPath)
}

func fatal(prefix string, err error) {
	fmt.Fprintln(os.Stderr, prefix, err)
	os.Exit(1)
}

// fastEdgeFraction reports the share of edges faster than local speed
// (travel time below distance*timeScale/1.5), the highway/arterial tier.
func fastEdgeFraction(g *graph.Graph) float64 {
	fast := 0
	for i := range g.DistW {
		if float64(g.TimeW[i]) < float64(g.DistW[i])*4.0/1.5 {
			fast++
		}
	}
	return float64(fast) / float64(len(g.DistW))
}

func names(specs []gen.NetworkSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
