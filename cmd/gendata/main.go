// Command gendata generates the synthetic dataset ladder and prints its
// statistics (the Table 1 / Table 2 analogues), for inspecting what the
// experiment harness runs on.
package main

import (
	"flag"
	"fmt"

	"rnknn/internal/cliutil"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
)

func main() {
	var (
		name = flag.String("network", "", "single ladder network to describe (default: all)")
		pois = flag.Bool("pois", false, "also list POI categories per network")
	)
	flag.Parse()

	specs := gen.Ladder()
	if *name != "" {
		spec, ok := gen.LadderSpec(*name)
		if !ok {
			cliutil.UsageExit("", "unknown network %q; ladder: %v", *name, names(specs))
		}
		specs = []gen.NetworkSpec{spec}
	}
	fmt.Printf("%-5s %10s %10s %12s %12s\n", "name", "|V|", "|E|", "deg<=2", "fast edges")
	for _, spec := range specs {
		g := gen.Network(spec)
		fmt.Printf("%-5s %10d %10d %11.1f%% %11.1f%%\n",
			spec.Name, g.NumVertices(), g.NumEdges()/2,
			g.ChainFraction()*100, fastEdgeFraction(g)*100)
		if *pois {
			for _, c := range gen.POICategories(g, 42) {
				fmt.Println("   ", gen.Describe(c.Name, g, c.Vertices))
			}
		}
	}
}

// fastEdgeFraction reports the share of edges faster than local speed
// (travel time below distance*timeScale/1.5), the highway/arterial tier.
func fastEdgeFraction(g *graph.Graph) float64 {
	fast := 0
	for i := range g.DistW {
		if float64(g.TimeW[i]) < float64(g.DistW[i])*4.0/1.5 {
			fast++
		}
	}
	return float64(fast) / float64(len(g.DistW))
}

func names(specs []gen.NetworkSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
