// Command fitcost fits the planner's cost-model coefficients to measured
// benchmark latencies and regenerates internal/planner/fitted_model.go —
// the checked-in table MethodAuto and the batch grouping decision start
// from (internal/planner.DefaultModel).
//
// Input is one or more BENCH_*.json files in cmd/bench2json's format. The
// fit consumes BenchmarkDBKNNGrid records (params method/k/density, custom
// metric nv carrying the network size) and solves each method family's
// closed-form least squares against its model shape:
//
//	INE, IER-Dijk   ns ≈ c · min(1.2·k/density, |V|)     (scalar, origin)
//	IER-PHL, -TNR   ns ≈ CandidateFactor · k · c          (scalar, origin)
//	IER-CH, -Gt     ns ≈ CandidateFactor · k · log2|V| · c
//	Gtree           ns ≈ a + b · k · log2|V|              (two-parameter)
//	ROAD            ns ≈ factor · Gtree(k, |V|)           (scalar, after Gtree)
//
// BenchmarkDBBatchClustered records (params mode=shared|fanout, metric
// members), when present, also calibrate the shared-expansion member
// fraction. Families with no records keep the hand-seeded paper priors;
// the generated file's Provenance names the inputs so Explain can cite
// the measured surface.
//
//	go test -run '^$' -bench 'BenchmarkDBKNNGrid|BenchmarkDBBatchClustered' . \
//	    | go run ./cmd/bench2json > BENCH_grid.json
//	go run ./cmd/fitcost -o internal/planner/fitted_model.go BENCH_grid.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/format"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"rnknn/internal/planner"
)

// record mirrors cmd/bench2json's output shape (the fields the fit needs).
type record struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics"`
	Params  map[string]string  `json:"params"`
}

// sample is one grid measurement: a (method, k, density, |V|) cell's ns/op.
type sample struct {
	k, density, nv, ns float64
}

func main() {
	out := flag.String("o", "internal/planner/fitted_model.go", "generated model file to write")
	defNV := flag.Float64("nv", 0, "network size fallback for records without an nv metric")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fitcost [-o file] BENCH_*.json...")
		os.Exit(2)
	}

	byMethod := map[string][]sample{}
	batch := map[string]record{} // mode -> DBBatchClustered record
	total := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		var recs []record
		if err := json.Unmarshal(data, &recs); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		for _, r := range recs {
			switch {
			case strings.HasPrefix(r.Name, "DBKNNGrid/"):
				m := r.Params["method"]
				k, errK := strconv.ParseFloat(r.Params["k"], 64)
				d, errD := strconv.ParseFloat(r.Params["density"], 64)
				if m == "" || errK != nil || errD != nil || d <= 0 || r.NsPerOp <= 0 {
					continue
				}
				nv := r.Metrics["nv"]
				if nv <= 0 {
					nv = *defNV
				}
				if nv <= 0 {
					fmt.Fprintf(os.Stderr, "fitcost: skipping %s: no nv metric and no -nv fallback\n", r.Name)
					continue
				}
				byMethod[m] = append(byMethod[m], sample{k: k, density: d, nv: nv, ns: r.NsPerOp})
				total++
			case strings.HasPrefix(r.Name, "DBBatchClustered/"):
				if mode := r.Params["mode"]; mode != "" {
					batch[mode] = r
					total++
				}
			}
		}
	}
	if total == 0 {
		fatal(fmt.Errorf("no DBKNNGrid or DBBatchClustered records in %v", flag.Args()))
	}

	m := planner.SeedModel()
	var fitted []string
	note := func(name string, ok bool) {
		if ok {
			fitted = append(fitted, name)
		}
	}

	// Expansion families: scalar through the origin on the settled-vertex
	// estimate. IER-Dijk is fitted as a factor over INE's fitted unit.
	note("INE", fitScalarInto(byMethod["INE"], func(s sample) float64 {
		return expansionX(s)
	}, &m.SettleNanos))
	note("IER-Dijk", fitScalarInto(byMethod["IER-Dijk"], func(s sample) float64 {
		return m.SettleNanos * expansionX(s)
	}, &m.IERDijkFactor))

	// Oracle families: scalar on CandidateFactor·k (·log2|V| for the
	// search-shaped oracles). CandidateFactor itself stays seeded — it is
	// degenerate with the per-oracle constant in this shape.
	note("IER-PHL", fitScalarInto(byMethod["IER-PHL"], func(s sample) float64 {
		return m.CandidateFactor * s.k
	}, &m.OraclePHLNanos))
	note("IER-TNR", fitScalarInto(byMethod["IER-TNR"], func(s sample) float64 {
		return m.CandidateFactor * s.k
	}, &m.OracleTNRNanos))
	note("IER-CH", fitScalarInto(byMethod["IER-CH"], func(s sample) float64 {
		return m.CandidateFactor * s.k * log2(s.nv)
	}, &m.OracleCHPerLogN))
	note("IER-Gt", fitScalarInto(byMethod["IER-Gt"], func(s sample) float64 {
		return m.CandidateFactor * s.k * log2(s.nv)
	}, &m.OracleGtPerLogN))

	// G-tree: two-parameter affine fit on k·log2|V|; ROAD as a factor over
	// the fitted G-tree surface.
	if a, bb, ok := fitAffine(byMethod["Gtree"], func(s sample) float64 { return s.k * log2(s.nv) }); ok {
		m.GtreeBaseNanos, m.GtreePerKLogN = a, bb
		fitted = append(fitted, "Gtree")
	}
	note("ROAD", fitScalarInto(byMethod["ROAD"], func(s sample) float64 {
		return m.GtreeBaseNanos + m.GtreePerKLogN*s.k*log2(s.nv)
	}, &m.ROADFactor))

	// Shared-expansion surface: the clustered batch benchmark pair pins the
	// marginal member fraction at its group size. The crossover stays at
	// its measured seed (one density point cannot locate it).
	if sh, ok1 := batch["shared"]; ok1 {
		if fo, ok2 := batch["fanout"]; ok2 {
			if members := sh.Metrics["members"]; members > 1 && fo.NsPerOp > 0 {
				single := fo.NsPerOp / members
				frac := (sh.NsPerOp - m.SharedBaseNanos - single) / (single * (members - 1))
				m.SharedMemberFrac = clamp(frac, 0.05, 1)
				fitted = append(fitted, "shared-frac")
			}
		}
	}

	names := make([]string, 0, len(flag.Args()))
	for _, p := range flag.Args() {
		names = append(names, filepath.Base(p))
	}
	sort.Strings(fitted)
	m.Fitted = true
	m.Samples = total
	m.Provenance = fmt.Sprintf("fitcost %s over %s", time.Now().Format("2006-01-02"), strings.Join(names, "+"))

	src := render(m, fitted, names)
	formatted, err := format.Source([]byte(src))
	if err != nil {
		fatal(fmt.Errorf("generated code does not format: %w\n%s", err, src))
	}
	if err := os.WriteFile(*out, formatted, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("fitcost: wrote %s (%d records; fitted: %s)\n", *out, total, strings.Join(fitted, ", "))
}

// expansionX is the INE-shaped regressor: settled vertices ≈ 1.2·k/D capped
// at the network size.
func expansionX(s sample) float64 {
	x := 1.2 * s.k / s.density
	if x > s.nv {
		x = s.nv
	}
	return x
}

func log2(n float64) float64 { return math.Log2(math.Max(n, 2)) }

// fitScalarInto solves ns ≈ c·x through the origin (c = Σxy/Σx²) and stores
// c when the family has samples and the fit is sane.
func fitScalarInto(ss []sample, x func(sample) float64, into *float64) bool {
	var sxy, sxx float64
	for _, s := range ss {
		xv := x(s)
		sxy += xv * s.ns
		sxx += xv * xv
	}
	if sxx <= 0 {
		return false
	}
	c := sxy / sxx
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return false
	}
	*into = c
	return true
}

// fitAffine solves ns ≈ a + b·x by the normal equations, clamping a at zero
// (a negative base would make tiny-k estimates negative).
func fitAffine(ss []sample, x func(sample) float64) (a, b float64, ok bool) {
	n := float64(len(ss))
	if n < 2 {
		return 0, 0, false
	}
	var sx, sy, sxy, sxx float64
	for _, s := range ss {
		xv := x(s)
		sx += xv
		sy += s.ns
		sxy += xv * s.ns
		sxx += xv * xv
	}
	det := n*sxx - sx*sx
	if det == 0 {
		return 0, 0, false
	}
	b = (n*sxy - sx*sy) / det
	a = (sy - b*sx) / n
	if b <= 0 || math.IsNaN(a) || math.IsNaN(b) {
		return 0, 0, false
	}
	if a < 0 {
		// Refit the slope through the origin with the base pinned at zero.
		a = 0
		if sxx > 0 {
			b = sxy / sxx
		}
	}
	return a, b, b > 0
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// render emits the generated Go source for the fitted model.
func render(m *planner.Model, fitted, inputs []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `// Code generated by cmd/fitcost. DO NOT EDIT.
//
// Inputs: %s
// Fitted families: %s (all others keep the hand-seeded paper priors).

package planner

// DefaultModel is the cost model New() starts from: the seed model's
// coefficient set least-squares fitted to measured BenchmarkDBKNNGrid
// latencies. Regenerate with cmd/fitcost after a bench run.
var DefaultModel = &Model{
	Fitted:     true,
	Provenance: %q,
	Samples:    %d,

	SettleNanos:     %s,
	IERDijkFactor:   %s,
	CandidateFactor: %s,
	OraclePHLNanos:  %s,
	OracleTNRNanos:  %s,
	OracleCHPerLogN: %s,
	OracleGtPerLogN: %s,
	GtreeBaseNanos:  %s,
	GtreePerKLogN:   %s,
	ROADFactor:      %s,
	DisBrwBaseNanos: %s,
	DisBrwPerK:      %s,
	DisBrwPerVertex: %s,

	SharedBaseNanos:      %s,
	SharedMemberFrac:     %s,
	SharedMinSingleNanos: %s,
}
`, strings.Join(inputs, ", "), strings.Join(fitted, ", "),
		m.Provenance, m.Samples,
		lit(m.SettleNanos), lit(m.IERDijkFactor), lit(m.CandidateFactor),
		lit(m.OraclePHLNanos), lit(m.OracleTNRNanos), lit(m.OracleCHPerLogN), lit(m.OracleGtPerLogN),
		lit(m.GtreeBaseNanos), lit(m.GtreePerKLogN), lit(m.ROADFactor),
		lit(m.DisBrwBaseNanos), lit(m.DisBrwPerK), lit(m.DisBrwPerVertex),
		lit(m.SharedBaseNanos), lit(m.SharedMemberFrac), lit(m.SharedMinSingleNanos))
	return sb.String()
}

// lit renders a coefficient as a stable Go literal (3 significant decimals
// — the fit is far noisier than that).
func lit(v float64) string {
	return strconv.FormatFloat(math.Round(v*1000)/1000, 'f', -1, 64)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fitcost:", err)
	os.Exit(1)
}
