// Command knnexp runs the paper's experiments and prints their tables.
//
// Usage:
//
//	knnexp -list
//	knnexp -exp fig10
//	knnexp -exp all -queries 200 -scale 0.5
//
// Each experiment id corresponds to a table or figure of the paper; see
// DESIGN.md for the index and EXPERIMENTS.md for recorded outcomes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rnknn/internal/cliutil"
	"rnknn/internal/exp"
)

func main() {
	var (
		id      = flag.String("exp", "", "experiment id to run, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		queries = flag.Int("queries", 0, "queries per measurement (default 100)")
		scale   = flag.Float64("scale", 0, "network scale factor (default 1.0)")
		seed    = flag.Int64("seed", 0, "workload seed (default 42)")
	)
	flag.Parse()

	if *list || *id == "" {
		titles := exp.Titles()
		fmt.Println("experiments:")
		for _, e := range exp.IDs() {
			fmt.Printf("  %-8s %s\n", e, titles[e])
		}
		if *id == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}
	if *queries < 0 {
		cliutil.UsageExit("", "-queries must be >= 0 (0 uses the default), got %d", *queries)
	}
	if *scale < 0 {
		cliutil.UsageExit("", "-scale must be >= 0 (0 uses the default), got %g", *scale)
	}

	cfg := exp.Config{Queries: *queries, Scale: *scale, Seed: *seed}
	ids := []string{*id}
	if *id == "all" {
		ids = exp.IDs()
	} else if _, ok := exp.Titles()[*id]; !ok {
		cliutil.UsageExit("", "unknown experiment %q (run with -list for the index)", *id)
	}
	for _, e := range ids {
		start := time.Now()
		tables, err := exp.Run(e, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		fmt.Printf("(%s took %s)\n\n", e, time.Since(start).Round(time.Millisecond))
	}
}
