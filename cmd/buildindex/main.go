// Command buildindex pre-builds road-network indexes and writes them as one
// snapshot file, so serving processes warm-start with rnknn.OpenFromSnapshot
// (or rnknn.WithIndexCache) instead of paying construction on every start.
//
//	buildindex -network NW -methods IER-PHL,Gtree -o nw.rnks
//	buildindex -network DE -methods all -verify
//
// Snapshots are self-contained (graph included), so rnknn.OpenSnapshotFile
// and rnknnd -snapshot open them zero-copy with no other input. Two more
// modes feed the continental-scale path:
//
//	buildindex -graph NY.rnkn -methods Gtree -o ny.rnks       # a gendata -dimacs import
//	buildindex -network DE -shards 4 -o de-shards -verify     # a shard set for rnknnd -shards
//
// The snapshot format is specified in docs/SNAPSHOT_FORMAT.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"rnknn/internal/cliutil"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/pkg/rnknn"
)

func main() {
	var (
		network   = flag.String("network", "NW", "ladder network name")
		graphFile = flag.String("graph", "", "read the road network from a .rnkn graph file (see gendata -dimacs-gr) instead of -network")
		methods   = flag.String("methods", "IER-PHL,Gtree", "comma-separated method names whose indexes to build, or 'all'")
		out       = flag.String("o", "", "output snapshot path (default <network>.rnks); with -shards, the shard set directory (default <network>-shards)")
		timeW     = flag.Bool("traveltime", false, "use travel-time weights")
		shards    = flag.Int("shards", 0, "emit a shard set for rnknn.OpenSharded / rnknnd -shards instead of a single snapshot")
		verify    = flag.Bool("verify", false, "re-open what was written and check every index loads")
	)
	flag.Parse()
	var ms []rnknn.Method
	if *methods == "all" {
		ms = rnknn.Methods()
	} else {
		for _, name := range strings.Split(*methods, ",") {
			m, err := rnknn.ParseMethod(strings.TrimSpace(name))
			if err != nil {
				usageExit("%v", err)
			}
			ms = append(ms, m)
		}
	}
	if len(ms) == 0 {
		usageExit("-methods selected no methods")
	}

	var g *graph.Graph
	if *graphFile != "" {
		f, err := os.Open(*graphFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graph:", err)
			os.Exit(1)
		}
		g, err = graph.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "graph:", err)
			os.Exit(1)
		}
	} else {
		spec, ok := gen.LadderSpec(*network)
		if !ok {
			usageExit("unknown network %q", *network)
		}
		g = gen.Network(spec)
	}
	if *timeW {
		g = g.View(graph.TravelTime)
	}
	path := *out
	if path == "" {
		path = g.Name + ".rnks"
		if *shards > 0 {
			path = g.Name + "-shards"
		}
	}
	fmt.Printf("network %s: |V|=%d |E|=%d (%s weights)\n", g.Name, g.NumVertices(), g.NumEdges()/2, g.Kind)

	start := time.Now()
	db, err := rnknn.Open(g, rnknn.WithMethods(ms...))
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	fmt.Printf("built %d method(s) in %s\n", len(ms), time.Since(start).Round(time.Millisecond))
	printIndexes(db.Stats())

	if *shards > 0 {
		start = time.Now()
		if err := db.SaveShardSet(path, *shards); err != nil {
			fmt.Fprintln(os.Stderr, "save shards:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d-shard set %s in %s\n", *shards, path, time.Since(start).Round(time.Millisecond))
		if *verify {
			start = time.Now()
			sdb, err := rnknn.OpenSharded(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verify:", err)
				os.Exit(1)
			}
			defer sdb.Close()
			for i := 0; i < sdb.NumShards(); i++ {
				for name, ix := range sdb.Shard(i).Stats().Indexes {
					if !ix.Loaded {
						fmt.Fprintf(os.Stderr, "verify: shard %d index %s was rebuilt, not loaded\n", i, name)
						os.Exit(1)
					}
				}
			}
			fmt.Printf("verify: opened %d shards (zero-copy) in %s\n", sdb.NumShards(), time.Since(start).Round(time.Millisecond))
		}
		return
	}

	start = time.Now()
	if err := db.SaveIndexesFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "save:", err)
		os.Exit(1)
	}
	info, err := os.Stat(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stat:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes) in %s\n", path, info.Size(), time.Since(start).Round(time.Millisecond))

	if *verify {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		defer f.Close()
		start = time.Now()
		db2, err := rnknn.OpenFromSnapshot(g, f, rnknn.WithMethods(ms...))
		if err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		for name, ix := range db2.Stats().Indexes {
			if !ix.Loaded {
				fmt.Fprintf(os.Stderr, "verify: index %s was rebuilt, not loaded\n", name)
				os.Exit(1)
			}
		}
		fmt.Printf("verify: reloaded every index in %s\n", time.Since(start).Round(time.Millisecond))
	}
}

func printIndexes(s rnknn.Stats) {
	names := make([]string, 0, len(s.Indexes))
	for name := range s.Indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ix := s.Indexes[name]
		fmt.Printf("  %-6s %10d bytes  built in %s\n", name, ix.SizeBytes, ix.BuildTime.Round(time.Millisecond))
	}
}

// usageExit routes invalid flag values through the shared convention,
// appending the valid method names.
func usageExit(format string, args ...any) {
	cliutil.UsageExit("valid methods: "+strings.Join(rnknn.MethodNames(), ", "), format, args...)
}
