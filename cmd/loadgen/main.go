// Command loadgen drives a running rnknnd with a Zipf-skewed query mix and
// reports an SLO summary — the serving-side counterpart of the library
// benchmarks, emitting BENCH_serve.json for the per-PR trajectory.
//
// Open-loop (constant arrival rate, the service-level view) at 200 RPS:
//
//	loadgen -addr http://localhost:8080 -rps 200 -duration 10s -zipf 1.0
//
// Closed-loop (back-to-back workers, the capacity view):
//
//	loadgen -mode closed -workers 32 -duration 10s
//
// A fraction of requests can be object churn (POST /objects/insert|remove),
// exercising the server's epoch-keyed cache invalidation:
//
//	loadgen -rps 200 -churn 0.05
//
// Navigation mode (continuous queries): each worker is a moving client that
// opens a /monitor SSE session on a server-side random-walk route, paced by
// a per-session step interval, and replays the delta stream. The report
// then carries the continuous-query economics — steps served, and the
// fraction answered by the server's safe-region check without a search
// ("queries avoided per step"):
//
//	loadgen -mode nav -workers 16 -steps 100 -step-interval 10ms
//
// Batch mode drives POST /batch with spatially clustered batches: the
// vertex space is cut into cells (contiguous id blocks — spatial blocks on
// the generated grids), a small hot set of cells is drawn, and each batch
// packs all its members into one Zipf-picked hot cell, so the server's
// grouping planner sees the same-leaf clusters shared expansion exists
// for. The batch-size mix is a weighted distribution like the k mix:
//
//	loadgen -mode batch -workers 8 -batch-mix 8:2,32:1,64:1 -hot-cells 8
//
// The report then adds batch throughput (batches and member queries per
// second), the issued batch-size histogram, the client-observed shared and
// cached member ratios, and the server's shared-group split over the run.
//
// The report records p50/p99/p999 read latency (HDR-style histogram),
// achieved vs target RPS, the server's cache-hit ratio over the run, and
// shed/error counts.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rnknn/internal/cliutil"
	"rnknn/internal/loadtest"
	"rnknn/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "rnknnd base URL")
		mode     = flag.String("mode", "open", "open (target arrival rate), closed (back-to-back workers), or nav (monitor sessions)")
		rps      = flag.Float64("rps", 200, "open-loop target requests per second (> 0)")
		workers  = flag.Int("workers", 64, "closed-loop workers / open-loop max outstanding requests")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		zipfS    = flag.Float64("zipf", 1.0, "Zipf exponent of the query-vertex skew (0 = uniform)")
		hot      = flag.Int("hot", 4096, "query-vertex pool size (capped at |V|; the Zipf ranks map onto it)")
		kmix     = flag.String("kmix", "10:1", "k distribution as k:weight[,k:weight...]")
		churn    = flag.Float64("churn", 0, "fraction of requests that are object mutations in [0,1)")
		category = flag.String("category", "default", "object category to query and churn")
		seed     = flag.Int64("seed", 1, "workload seed")
		out      = flag.String("out", "BENCH_serve.json", "report path (- for stdout only)")

		navSteps     = flag.Int("steps", 100, "nav mode: route length per monitor session")
		stepInterval = flag.Duration("step-interval", 0, "nav mode: per-session step interval (0 = unpaced)")

		batchMix = flag.String("batch-mix", "8:2,32:1,64:1", "batch mode: batch-size distribution as size:weight[,size:weight...]")
		hotCells = flag.Int("hot-cells", 8, "batch mode: hot cell count the clustered generator draws batches from")
		cellSpan = flag.Int("cell-span", 64, "batch mode: vertices per cell (contiguous id block)")
	)
	flag.Parse()

	if *rps <= 0 {
		usageExit("-rps must be > 0, got %g", *rps)
	}
	if *workers <= 0 {
		usageExit("-workers must be > 0, got %d", *workers)
	}
	if *duration <= 0 {
		usageExit("-duration must be > 0, got %s", *duration)
	}
	if *churn < 0 || *churn >= 1 {
		usageExit("-churn must be in [0,1), got %g", *churn)
	}
	if *zipfS < 0 {
		usageExit("-zipf must be >= 0, got %g", *zipfS)
	}
	if *mode != "open" && *mode != "closed" && *mode != "nav" && *mode != "batch" {
		usageExit("-mode must be open, closed, nav, or batch, got %q", *mode)
	}
	if *navSteps <= 0 {
		usageExit("-steps must be > 0, got %d", *navSteps)
	}
	ks, kweights, err := parseKMix(*kmix)
	if err != nil {
		usageExit("-kmix: %v", err)
	}
	sizes, sizeWeights, err := parseKMix(*batchMix)
	if err != nil {
		usageExit("-batch-mix: %v", err)
	}
	if *hotCells <= 0 || *cellSpan <= 0 {
		usageExit("-hot-cells and -cell-span must be > 0")
	}

	client := &http.Client{Timeout: 10 * time.Second}
	stats0, err := fetchStats(client, *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: cannot reach %s: %v\n", *addr, err)
		os.Exit(1)
	}
	numVertices := stats0.Graph.NumVertices
	if numVertices == 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %s reports an empty graph\n", *addr)
		os.Exit(1)
	}
	pool := *hot
	if pool > numVertices {
		pool = numVertices
	}
	if pool < 1 {
		pool = 1
	}
	// The hot set is a fixed random subset of the vertex space; Zipf rank i
	// maps to its i-th member, so rank 0 is the hottest vertex.
	perm := rand.New(rand.NewSource(*seed)).Perm(numVertices)
	hotVertices := make([]int32, pool)
	for i := 0; i < pool; i++ {
		hotVertices[i] = int32(perm[i])
	}

	g := &generator{
		client:      client,
		base:        strings.TrimRight(*addr, "/"),
		category:    *category,
		hotVertices: hotVertices,
		ks:          ks,
		kweights:    kweights,
		zipfS:       *zipfS,
		churnRatio:  *churn,
		numVertices: numVertices,
	}
	if *mode == "batch" {
		g.batchSizes = sizes
		g.batchWeights = sizeWeights
		g.cells = hotCellBlocks(numVertices, *hotCells, *cellSpan, *seed)
		g.batchSizeHist = map[int]uint64{}
	}

	fmt.Printf("loadgen: %s mode against %s (|V|=%d, pool %d, zipf %g, kmix %s, churn %g) for %s\n",
		*mode, *addr, numVertices, pool, *zipfS, *kmix, *churn, *duration)
	start := time.Now()
	switch *mode {
	case "open":
		g.runOpen(*rps, *workers, *duration, *seed)
	case "closed":
		g.runClosed(*workers, *duration, *seed)
	case "nav":
		g.runNav(*workers, *duration, *navSteps, *stepInterval, *seed)
	case "batch":
		g.runBatch(*workers, *duration, *seed)
	}
	elapsed := time.Since(start)
	stats1, err := fetchStats(client, *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: final stats: %v\n", err)
		os.Exit(1)
	}

	report := g.report(*mode, *rps, elapsed, stats0, stats1)
	report.ZipfS = *zipfS
	report.HotVertices = pool
	report.KMix = *kmix
	report.ChurnRatio = *churn
	enc, _ := json.MarshalIndent(report, "", "  ")
	fmt.Println(string(enc))
	if *out != "-" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("loadgen: wrote %s\n", *out)
	}
	if report.Errors > 0 {
		os.Exit(1)
	}
}

// Report is the BENCH_serve.json schema: one open- or closed-loop run's
// SLO summary.
type Report struct {
	Bench       string  `json:"bench"`
	Mode        string  `json:"mode"`
	TargetRPS   float64 `json:"target_rps,omitempty"`
	AchievedRPS float64 `json:"achieved_rps"`
	DurationS   float64 `json:"duration_s"`
	// Requests = Reads + ChurnOps (completed, any status); Shed counts 429
	// answers, Errors transport failures and non-2xx non-429 statuses,
	// DroppedTicks open-loop arrivals skipped because the outstanding
	// window was full (0 when the target rate was sustained).
	Requests     uint64 `json:"requests"`
	Reads        uint64 `json:"reads"`
	ChurnOps     uint64 `json:"churn_ops"`
	Shed         uint64 `json:"shed"`
	Errors       uint64 `json:"errors"`
	DroppedTicks uint64 `json:"dropped_ticks"`
	// Latency quantiles cover successful reads only, in microseconds.
	P50Micros  int64 `json:"p50_us"`
	P90Micros  int64 `json:"p90_us"`
	P99Micros  int64 `json:"p99_us"`
	P999Micros int64 `json:"p999_us"`
	MeanMicros int64 `json:"mean_us"`
	MaxMicros  int64 `json:"max_us"`
	// CacheHitRatio is hits/(hits+misses) from the server's counters over
	// this run; CachedResponseRatio is the client-observed fraction of read
	// answers served without a search (cache hit or coalesced).
	CacheHitRatio       float64 `json:"cache_hit_ratio"`
	CachedResponseRatio float64 `json:"cached_response_ratio"`
	Coalesced           uint64  `json:"coalesced"`
	ZipfS               float64 `json:"zipf_s"`
	HotVertices         int     `json:"hot_vertices"`
	KMix                string  `json:"k_mix"`
	ChurnRatio          float64 `json:"churn_ratio"`
	// Nav mode (continuous queries): completed monitor sessions, route steps
	// streamed, steps that re-ran a search server-side, and — the number the
	// monitor subsystem exists for — the fraction of steps the safe-region
	// check answered without any search ("queries avoided per step").
	NavSessions    uint64  `json:"nav_sessions,omitempty"`
	NavSteps       uint64  `json:"nav_steps,omitempty"`
	NavRefreshes   uint64  `json:"nav_refreshes,omitempty"`
	AvoidedPerStep float64 `json:"avoided_per_step,omitempty"`
	// Batch mode: completed batches and their member queries, both as totals
	// and as throughput; the issued batch-size histogram (size -> count);
	// the client-observed fraction of members answered by shared-expansion
	// groups and from the cache; and the server's shared-group split over
	// the run (MeanGroupSize = shared queries / shared groups).
	BatchCount         uint64         `json:"batches,omitempty"`
	BatchQueries       uint64         `json:"batch_queries,omitempty"`
	BatchesPerSec      float64        `json:"batches_per_sec,omitempty"`
	BatchQueriesPerSec float64        `json:"batch_queries_per_sec,omitempty"`
	BatchSizeHist      map[int]uint64 `json:"batch_size_hist,omitempty"`
	BatchSharedRatio   float64        `json:"batch_shared_ratio,omitempty"`
	BatchCachedRatio   float64        `json:"batch_cached_ratio,omitempty"`
	SharedGroups       uint64         `json:"shared_groups,omitempty"`
	SharedQueries      uint64         `json:"shared_queries,omitempty"`
	FanoutQueries      uint64         `json:"fanout_queries,omitempty"`
	MeanGroupSize      float64        `json:"mean_group_size,omitempty"`
}

// generator fires the request mix and accumulates client-side counters.
type generator struct {
	client      *http.Client
	base        string
	category    string
	hotVertices []int32
	ks          []int
	kweights    []float64 // cumulative, normalized
	zipfS       float64
	churnRatio  float64
	numVertices int

	hist     loadtest.Histogram
	reads    atomic.Uint64
	cached   atomic.Uint64
	churnOps atomic.Uint64
	shed     atomic.Uint64
	errors   atomic.Uint64
	dropped  atomic.Uint64

	// nav-mode counters (see runNav).
	navSessions  atomic.Uint64
	navSteps     atomic.Uint64
	navAvoided   atomic.Uint64
	navRefreshes atomic.Uint64

	// batch mode (see runBatch): the size mix, the hot cells batches cluster
	// into, and client-observed member outcome counters.
	batchSizes    []int
	batchWeights  []float64 // cumulative, normalized
	cells         [][]int32
	batches       atomic.Uint64
	batchQueries  atomic.Uint64
	batchShared   atomic.Uint64
	batchCached   atomic.Uint64
	histMu        sync.Mutex
	batchSizeHist map[int]uint64
}

// workerState is one goroutine's private randomness (Zipf tables are not
// concurrency-safe).
type workerState struct {
	rng  *rand.Rand
	zipf *loadtest.Zipf
	// churnToggle alternates insert/remove so the object count stays near
	// its starting level.
	churnToggle bool
}

func (g *generator) newWorkerState(seed int64) *workerState {
	rng := rand.New(rand.NewSource(seed))
	return &workerState{rng: rng, zipf: loadtest.NewZipf(rng, g.zipfS, len(g.hotVertices))}
}

// runOpen fires requests at the target arrival rate: a ticker admits one
// request per interval into a bounded outstanding window (maxOut); arrivals
// that find the window full are dropped and counted rather than queued, so
// a slow server cannot push the generator into coordinated omission.
func (g *generator) runOpen(rps float64, maxOut int, d time.Duration, seed int64) {
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	sem := make(chan struct{}, maxOut)
	var wg sync.WaitGroup
	var states sync.Pool
	var stateSeq atomic.Int64
	states.New = func() any {
		return g.newWorkerState(seed + 1000*stateSeq.Add(1))
	}
	deadline := time.Now().Add(d)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for now := range tick.C {
		if now.After(deadline) {
			break
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				st := states.Get().(*workerState)
				g.fire(st)
				states.Put(st)
			}()
		default:
			g.dropped.Add(1)
		}
	}
	wg.Wait()
}

// runClosed runs n workers back-to-back until the deadline.
func (g *generator) runClosed(n int, d time.Duration, seed int64) {
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := g.newWorkerState(seed + 1000*int64(w))
			for time.Now().Before(deadline) {
				g.fire(st)
			}
		}(w)
	}
	wg.Wait()
}

// runNav runs n concurrent moving clients: each opens a /monitor SSE
// session on a server-side random walk from a hot vertex (the same skewed
// start distribution the read mix uses), replays the delta stream, and
// opens the next session when the route ends, until the deadline. The
// per-session step interval is passed to the server, which paces the stream
// like a vehicle advancing one edge per tick. When -churn is set, one
// background mutator toggles objects so sessions also exercise epoch
// refreshes mid-route.
func (g *generator) runNav(n int, d time.Duration, steps int, stepInterval time.Duration, seed int64) {
	deadline := time.Now().Add(d)
	done := make(chan struct{})
	var wg sync.WaitGroup
	if g.churnRatio > 0 {
		churnEvery := stepInterval
		if churnEvery <= 0 {
			churnEvery = 50 * time.Millisecond
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := g.newWorkerState(seed + 999)
			tick := time.NewTicker(churnEvery)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					g.fireChurn(st)
				}
			}
		}()
	}
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := g.newWorkerState(seed + 1000*int64(w))
			sess := 0
			for time.Now().Before(deadline) {
				g.fireMonitor(st, steps, stepInterval, seed+1000*int64(w)+int64(sess))
				sess++
			}
		}(w)
	}
	go func() {
		time.Sleep(time.Until(deadline))
		close(done)
	}()
	wg.Wait()
}

// fireMonitor runs one monitor session end to end, counting the streamed
// steps and their avoided/refresh split from the SSE events.
func (g *generator) fireMonitor(st *workerState, steps int, stepInterval time.Duration, walkSeed int64) {
	q := g.hotVertices[st.zipf.Sample()]
	k := g.ks[sampleWeighted(st.rng, g.kweights)]
	url := fmt.Sprintf("%s/monitor?q=%d&k=%d&steps=%d&seed=%d&interval_ms=%d&category=%s",
		g.base, q, k, steps, walkSeed, stepInterval.Milliseconds(), g.category)
	// Monitor sessions outlive the mix client's 10s timeout by design; a
	// plain transport-level client reads the stream for as long as it runs.
	resp, err := http.Get(url)
	if err != nil {
		g.errors.Add(1)
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		g.shed.Add(1)
		return
	case resp.StatusCode != http.StatusOK:
		g.errors.Add(1)
		return
	}
	event := ""
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "step":
				var step serve.MonitorStepJSON
				if err := json.Unmarshal([]byte(data), &step); err != nil {
					g.errors.Add(1)
					return
				}
				g.navSteps.Add(1)
				if step.Refresh == "none" {
					g.navAvoided.Add(1)
				} else {
					g.navRefreshes.Add(1)
				}
			case "done":
				sawDone = true
			case "error":
				g.errors.Add(1)
				return
			}
		}
	}
	if err := sc.Err(); err != nil || !sawDone {
		g.errors.Add(1)
		return
	}
	g.navSessions.Add(1)
}

// hotCellBlocks cuts the vertex space into contiguous cellSpan-vertex
// blocks and picks n of them at random. On the generated grid networks,
// contiguous vertex ids are spatially adjacent, so a block approximates
// one partition leaf — the locality unit the server's grouping planner
// clusters by.
func hotCellBlocks(numVertices, n, cellSpan int, seed int64) [][]int32 {
	numCells := numVertices / cellSpan
	if numCells < 1 {
		numCells = 1
	}
	if n > numCells {
		n = numCells
	}
	rng := rand.New(rand.NewSource(seed + 77))
	out := make([][]int32, n)
	for i, c := range rng.Perm(numCells)[:n] {
		lo := c * cellSpan
		hi := lo + cellSpan
		if hi > numVertices {
			hi = numVertices
		}
		cell := make([]int32, 0, hi-lo)
		for v := lo; v < hi; v++ {
			cell = append(cell, int32(v))
		}
		out[i] = cell
	}
	return out
}

// runBatch runs n workers firing clustered POST /batch requests
// back-to-back until the deadline (the capacity view, like closed mode).
// When -churn is set, the per-request churn coin applies per batch.
func (g *generator) runBatch(n int, d time.Duration, seed int64) {
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := g.newWorkerState(seed + 1000*int64(w))
			for time.Now().Before(deadline) {
				if g.churnRatio > 0 && st.rng.Float64() < g.churnRatio {
					g.fireChurn(st)
					continue
				}
				g.fireBatch(st)
			}
		}(w)
	}
	wg.Wait()
}

// fireBatch issues one clustered batch: a Zipf-picked hot cell, a size from
// the batch mix, members drawn from inside the cell (duplicates allowed —
// they exercise the server's intra-batch dedup). The latency histogram
// records whole-batch latency in this mode.
func (g *generator) fireBatch(st *workerState) {
	size := g.batchSizes[sampleWeighted(st.rng, g.batchWeights)]
	cell := g.cells[st.rng.Intn(len(g.cells))]
	req := serve.BatchRequest{Queries: make([]serve.BatchQuery, size)}
	for i := range req.Queries {
		req.Queries[i] = serve.BatchQuery{
			Query:    cell[st.rng.Intn(len(cell))],
			K:        g.ks[sampleWeighted(st.rng, g.kweights)],
			Category: g.category,
		}
	}
	body, _ := json.Marshal(req)
	start := time.Now()
	resp, err := g.client.Post(g.base+"/batch", "application/json", bytes.NewReader(body))
	lat := time.Since(start)
	if err != nil {
		g.errors.Add(1)
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		g.shed.Add(1)
		return
	case resp.StatusCode != http.StatusOK:
		g.errors.Add(1)
		return
	}
	var br serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		g.errors.Add(1)
		return
	}
	g.batches.Add(1)
	g.batchQueries.Add(uint64(len(br.Results)))
	for i := range br.Results {
		if br.Results[i].Error != "" {
			g.errors.Add(1)
			continue
		}
		if br.Results[i].Shared {
			g.batchShared.Add(1)
		}
		if br.Results[i].Cached {
			g.batchCached.Add(1)
		}
	}
	g.hist.Record(lat)
	g.histMu.Lock()
	g.batchSizeHist[size]++
	g.histMu.Unlock()
}

// fire issues one request from the mix.
func (g *generator) fire(st *workerState) {
	if g.churnRatio > 0 && st.rng.Float64() < g.churnRatio {
		g.fireChurn(st)
		return
	}
	g.fireRead(st)
}

func (g *generator) fireRead(st *workerState) {
	v := g.hotVertices[st.zipf.Sample()]
	k := g.ks[sampleWeighted(st.rng, g.kweights)]
	url := fmt.Sprintf("%s/knn?q=%d&k=%d&category=%s", g.base, v, k, g.category)
	start := time.Now()
	resp, err := g.client.Get(url)
	lat := time.Since(start)
	if err != nil {
		g.errors.Add(1)
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		g.shed.Add(1)
		return
	case resp.StatusCode != http.StatusOK:
		g.errors.Add(1)
		return
	}
	var kr serve.KNNResponse
	if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil {
		g.errors.Add(1)
		return
	}
	g.reads.Add(1)
	if kr.Cached {
		g.cached.Add(1)
	}
	g.hist.Record(lat)
}

func (g *generator) fireChurn(st *workerState) {
	endpoint := "/objects/insert"
	if st.churnToggle {
		endpoint = "/objects/remove"
	}
	st.churnToggle = !st.churnToggle
	v := int32(st.rng.Intn(g.numVertices))
	body, _ := json.Marshal(serve.ObjectsRequest{Category: g.category, Vertices: []int32{v}})
	resp, err := g.client.Post(g.base+endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		g.errors.Add(1)
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		g.errors.Add(1)
		return
	}
	g.churnOps.Add(1)
}

func (g *generator) report(mode string, targetRPS float64, elapsed time.Duration, s0, s1 *serve.StatsResponse) *Report {
	r := &Report{
		Bench:        "serve",
		Mode:         mode,
		DurationS:    elapsed.Seconds(),
		Reads:        g.reads.Load(),
		ChurnOps:     g.churnOps.Load(),
		Shed:         g.shed.Load(),
		Errors:       g.errors.Load(),
		DroppedTicks: g.dropped.Load(),
		P50Micros:    g.hist.Quantile(0.50).Microseconds(),
		P90Micros:    g.hist.Quantile(0.90).Microseconds(),
		P99Micros:    g.hist.Quantile(0.99).Microseconds(),
		P999Micros:   g.hist.Quantile(0.999).Microseconds(),
		MeanMicros:   g.hist.Mean().Microseconds(),
		MaxMicros:    g.hist.Max().Microseconds(),
		Coalesced:    s1.Server.Coalesced - s0.Server.Coalesced,
	}
	if mode == "open" {
		r.TargetRPS = targetRPS
	}
	r.Requests = r.Reads + r.ChurnOps
	if elapsed > 0 {
		r.AchievedRPS = float64(r.Requests+r.Shed) / elapsed.Seconds()
	}
	r.NavSessions = g.navSessions.Load()
	r.NavSteps = g.navSteps.Load()
	r.NavRefreshes = g.navRefreshes.Load()
	if r.NavSteps > 0 {
		r.AvoidedPerStep = float64(g.navAvoided.Load()) / float64(r.NavSteps)
	}
	r.BatchCount = g.batches.Load()
	r.BatchQueries = g.batchQueries.Load()
	if r.BatchCount > 0 {
		r.Requests += r.BatchCount
		if elapsed > 0 {
			r.AchievedRPS = float64(r.Requests+r.Shed) / elapsed.Seconds()
			r.BatchesPerSec = float64(r.BatchCount) / elapsed.Seconds()
			r.BatchQueriesPerSec = float64(r.BatchQueries) / elapsed.Seconds()
		}
		g.histMu.Lock()
		r.BatchSizeHist = g.batchSizeHist
		g.histMu.Unlock()
		r.BatchSharedRatio = float64(g.batchShared.Load()) / float64(r.BatchQueries)
		r.BatchCachedRatio = float64(g.batchCached.Load()) / float64(r.BatchQueries)
		r.SharedGroups = s1.DB.Batch.SharedGroups - s0.DB.Batch.SharedGroups
		r.SharedQueries = s1.DB.Batch.SharedQueries - s0.DB.Batch.SharedQueries
		r.FanoutQueries = s1.DB.Batch.FanoutQueries - s0.DB.Batch.FanoutQueries
		if r.SharedGroups > 0 {
			r.MeanGroupSize = float64(r.SharedQueries) / float64(r.SharedGroups)
		}
	}
	hits := s1.Server.CacheHits - s0.Server.CacheHits
	misses := s1.Server.CacheMisses - s0.Server.CacheMisses
	if hits+misses > 0 {
		r.CacheHitRatio = float64(hits) / float64(hits+misses)
	}
	if r.Reads > 0 {
		r.CachedResponseRatio = float64(g.cached.Load()) / float64(r.Reads)
	}
	return r
}

func fetchStats(client *http.Client, base string) (*serve.StatsResponse, error) {
	resp, err := client.Get(strings.TrimRight(base, "/") + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/stats: %s", resp.Status)
	}
	var s serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// parseKMix parses "k:weight[,k:weight...]" into values and a cumulative
// normalized weight table.
func parseKMix(s string) ([]int, []float64, error) {
	var ks []int
	var ws []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, ":", 2)
		k, err := strconv.Atoi(strings.TrimSpace(kv[0]))
		if err != nil || k <= 0 {
			return nil, nil, fmt.Errorf("%q: k must be a positive integer", part)
		}
		w := 1.0
		if len(kv) == 2 {
			w, err = strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
			if err != nil || w <= 0 {
				return nil, nil, fmt.Errorf("%q: weight must be a positive number", part)
			}
		}
		ks = append(ks, k)
		ws = append(ws, w)
	}
	if len(ks) == 0 {
		return nil, nil, fmt.Errorf("empty mix")
	}
	total := 0.0
	for _, w := range ws {
		total += w
	}
	cum := make([]float64, len(ws))
	acc := 0.0
	for i, w := range ws {
		acc += w / total
		cum[i] = acc
	}
	return ks, cum, nil
}

// sampleWeighted draws an index from a cumulative normalized weight table.
func sampleWeighted(rng *rand.Rand, cum []float64) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(cum, u)
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return i
}

func usageExit(format string, args ...any) {
	cliutil.UsageExit("", format, args...)
}
