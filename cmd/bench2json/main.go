// Command bench2json converts `go test -bench` output on stdin into a
// JSON array on stdout, one record per benchmark result. Sub-benchmark
// path segments of the form key=value are lifted into fields of the
// record (the DBKNNGrid benchmarks encode method, k, and density that
// way), so downstream tooling can track ns/op per regime across PRs
// without re-parsing names. With -benchmem (or b.ReportAllocs, as in
// BenchmarkDBKNNAllocs) the bytes_per_op and allocs_per_op surfaces are
// emitted alongside ns_per_op — a reported 0 stays an explicit 0 in the
// JSON, which is what lets the trajectory pin the zero-allocation hot
// paths. Custom b.ReportMetric units land in a "metrics" map keyed by
// unit name (BenchmarkMonitorRoute reports avoided-ratio and ns/step
// that way), so new per-benchmark surfaces need no parser changes.
//
//	go test -run '^$' -bench 'BenchmarkDB' -benchtime 1x -benchmem . | go run ./cmd/bench2json > BENCH_pr.json
//
// Record shape:
//
//	{"name":"DBKNNGrid/method=INE/k=10/density=0.001","ns_per_op":61234,
//	 "iterations":1,"procs":8,"params":{"method":"INE","k":"10","density":"0.001"}}
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// record is one parsed benchmark line.
type record struct {
	// Name is the benchmark name without the "Benchmark" prefix and the
	// trailing -GOMAXPROCS suffix.
	Name string `json:"name"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// Iterations is the measured iteration count (b.N).
	Iterations int64 `json:"iterations"`
	// Procs is the GOMAXPROCS suffix of the benchmark name (0 if absent).
	Procs int `json:"procs,omitempty"`
	// BytesPerOp / AllocsPerOp mirror -benchmem output when present.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any other b.ReportMetric units keyed by unit name
	// (BenchmarkMonitorRoute's avoided-ratio and ns/step land here).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Params holds key=value path segments of sub-benchmarks.
	Params map[string]string `json:"params,omitempty"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []record
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			out = append(out, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if out == nil {
		out = []record{} // emit [] rather than null for empty input
	}
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parseLine parses one "BenchmarkX-8  10  123 ns/op [456 B/op  7 allocs/op]"
// result line; anything else reports ok=false.
func parseLine(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return record{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	r := record{Name: name}
	// Split the -GOMAXPROCS suffix off the last path segment.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if procs, err := strconv.Atoi(name[i+1:]); err == nil {
			r.Procs = procs
			r.Name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r.Iterations = iters
	// Remaining fields come in (value, unit) pairs: "123 ns/op 45 B/op ...".
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		case "MB/s":
			// throughput is derivable from ns/op; skip rather than pollute
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[fields[i+1]] = v
		}
	}
	if !seen {
		return record{}, false
	}
	for _, seg := range strings.Split(r.Name, "/") {
		if k, v, ok := strings.Cut(seg, "="); ok && k != "" {
			if r.Params == nil {
				r.Params = map[string]string{}
			}
			r.Params[k] = v
		}
	}
	return r, true
}
