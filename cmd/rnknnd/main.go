// Command rnknnd serves kNN queries over HTTP — the network front end of
// the library, built on internal/serve's three load-shedding layers
// (admission control, epoch-keyed result cache, request coalescing).
//
// Serve the default ~16k-vertex ladder network with the default methods:
//
//	rnknnd -addr :8080 -network NW -density 0.001
//
// Endpoints (all JSON):
//
//	GET  /knn?q=123&k=10[&method=auto][&category=default]
//	GET  /range?q=123&radius=5000[&category=default]
//	POST /batch            {"queries":[{"query":1,"k":10},{"query":2,"radius":5000}]}
//	POST /objects/insert   {"category":"default","vertices":[7,9]}
//	POST /objects/remove   {"category":"default","vertices":[7]}
//	GET  /stats
//	GET  /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rnknn/internal/cliutil"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/serve"
	"rnknn/pkg/rnknn"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		network     = flag.String("network", "NW", "ladder network name")
		methodsFlag = flag.String("methods", "INE,IER-Dijk,Gtree", "comma-separated methods to build (see rnknn.MethodNames)")
		density     = flag.Float64("density", 0.001, "uniform object density in (0,1] for the default category")
		seed        = flag.Int64("seed", 42, "object placement seed")
		timeW       = flag.Bool("traveltime", false, "use travel-time weights")
		indexCache  = flag.String("indexcache", "", "directory for the index snapshot cache (skip rebuilds across restarts)")
		maxInflight = flag.Int("max-inflight", 256, "admission limit: concurrent query requests before shedding 429s")
		cacheSize   = flag.Int("cache-entries", 4096, "result cache capacity in entries (negative disables)")
		cacheShards = flag.Int("cache-shards", 16, "result cache shard count")
	)
	flag.Parse()

	if *density <= 0 || *density > 1 {
		usageExit("-density must be in (0,1], got %g", *density)
	}
	var methods []rnknn.Method
	for _, name := range strings.Split(*methodsFlag, ",") {
		m, err := rnknn.ParseMethod(strings.TrimSpace(name))
		if err != nil {
			usageExit("-methods: %v", err)
		}
		if m == rnknn.MethodAuto {
			usageExit("-methods: list concrete methods to build; requests pick auto per query")
		}
		methods = append(methods, m)
	}
	if len(methods) == 0 {
		usageExit("-methods is empty")
	}
	spec, ok := gen.LadderSpec(*network)
	if !ok {
		usageExit("unknown network %q", *network)
	}
	g := gen.Network(spec)
	if *timeW {
		g = g.View(graph.TravelTime)
	}

	opts := []rnknn.Option{
		rnknn.WithMethods(methods...),
		rnknn.WithObjects(rnknn.DefaultCategory, gen.Uniform(g, *density, *seed)),
	}
	if *indexCache != "" {
		opts = append(opts, rnknn.WithIndexCache(*indexCache))
	}
	start := time.Now()
	db, err := rnknn.Open(g, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	numObjects, _ := db.NumObjects(rnknn.DefaultCategory)
	fmt.Printf("rnknnd: network %s |V|=%d |E|=%d (%s weights), %d objects, methods %v, opened in %s\n",
		spec.Name, g.NumVertices(), g.NumEdges()/2, g.Kind, numObjects, db.Methods(), time.Since(start).Round(time.Millisecond))

	srv := serve.New(db, serve.Config{
		MaxInFlight:  *maxInflight,
		CacheEntries: *cacheSize,
		CacheShards:  *cacheShards,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("rnknnd: listening on %s (max in-flight %d, cache %d entries)\n", *addr, *maxInflight, *cacheSize)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Println("rnknnd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
			os.Exit(1)
		}
	}
	stats := srv.Stats()
	fmt.Printf("rnknnd: served %d requests (%d shed, %d cache hits, %d coalesced)\n",
		stats.Requests, stats.Shed, stats.CacheHits, stats.Coalesced)
}

func usageExit(format string, args ...any) {
	cliutil.UsageExit("valid methods: "+strings.Join(rnknn.MethodNames(), ", "), format, args...)
}
