// Command rnknnd serves kNN queries over HTTP — the network front end of
// the library, built on internal/serve's three load-shedding layers
// (admission control, epoch-keyed result cache, request coalescing).
//
// Serve the default ~16k-vertex ladder network with the default methods:
//
//	rnknnd -addr :8080 -network NW -density 0.001
//
// Serve a prebuilt snapshot zero-copy (warm start costs page faults, and
// replicas of one snapshot share a single page-cache copy), or a shard
// set built by buildindex -shards:
//
//	rnknnd -snapshot nw.rnks
//	rnknnd -shards de-shards
//
// Endpoints (all JSON):
//
//	GET  /knn?q=123&k=10[&method=auto][&category=default]
//	GET  /range?q=123&radius=5000[&category=default]
//	POST /batch            {"queries":[{"query":1,"k":10},{"query":2,"radius":5000}]}
//	POST /objects/insert   {"category":"default","vertices":[7,9]}
//	POST /objects/remove   {"category":"default","vertices":[7]}
//	GET  /stats
//	GET  /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rnknn/internal/cliutil"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/serve"
	"rnknn/pkg/rnknn"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		network     = flag.String("network", "NW", "ladder network name")
		snapshot    = flag.String("snapshot", "", "open a self-contained snapshot file zero-copy (graph included; see buildindex) instead of -network")
		shardDir    = flag.String("shards", "", "serve a shard set directory (see buildindex -shards) instead of -network")
		mmapFlag    = flag.Bool("mmap", false, "map the -indexcache snapshot zero-copy instead of decoding it")
		methodsFlag = flag.String("methods", "INE,IER-Dijk,Gtree", "comma-separated methods to build (see rnknn.MethodNames)")
		density     = flag.Float64("density", 0.001, "uniform object density in (0,1] for the default category")
		seed        = flag.Int64("seed", 42, "object placement seed")
		timeW       = flag.Bool("traveltime", false, "use travel-time weights")
		indexCache  = flag.String("indexcache", "", "directory for the index snapshot cache (skip rebuilds across restarts)")
		maxInflight = flag.Int("max-inflight", 256, "admission limit: concurrent query requests before shedding 429s")
		cacheSize   = flag.Int("cache-entries", 4096, "result cache capacity in entries (negative disables)")
		cacheShards = flag.Int("cache-shards", 16, "result cache shard count")
	)
	flag.Parse()

	if *density <= 0 || *density > 1 {
		usageExit("-density must be in (0,1], got %g", *density)
	}
	if *snapshot != "" && *shardDir != "" {
		usageExit("-snapshot and -shards are mutually exclusive")
	}
	cfg := serve.Config{
		MaxInFlight:  *maxInflight,
		CacheEntries: *cacheSize,
		CacheShards:  *cacheShards,
	}

	var handler http.Handler
	var stats func()
	start := time.Now()
	switch {
	case *shardDir != "":
		// Sharded serving: one mapped DB per partition cell, objects placed
		// on their owning shards, per-shard caches behind a fan-out front.
		sdb, err := rnknn.OpenSharded(*shardDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "open shards:", err)
			os.Exit(1)
		}
		defer sdb.Close()
		g := sdb.Graph()
		if err := sdb.RegisterObjects(rnknn.DefaultCategory, gen.Uniform(g, *density, *seed)); err != nil {
			fmt.Fprintln(os.Stderr, "objects:", err)
			os.Exit(1)
		}
		numObjects, _ := sdb.NumObjects(rnknn.DefaultCategory)
		fmt.Printf("rnknnd: network %s |V|=%d |E|=%d (%s weights), %d objects across %d shards, opened in %s\n",
			g.Name, g.NumVertices(), g.NumEdges()/2, g.Kind, numObjects, sdb.NumShards(), time.Since(start).Round(time.Millisecond))
		fs := serve.NewSharded(sdb, cfg)
		handler = fs.Handler()
		stats = func() {
			var req, shed, hits uint64
			for i := 0; i < sdb.NumShards(); i++ {
				st := fs.Shard(i).Stats()
				req += st.Requests
				shed += st.Shed
				hits += st.CacheHits
			}
			fmt.Printf("rnknnd: served %d shard queries (%d shed, %d cache hits)\n", req, shed, hits)
		}
	case *snapshot != "":
		// Zero-copy single-DB serving: graph and indexes come from the
		// snapshot's mapping; warm start costs page faults, not a decode.
		db, err := rnknn.OpenSnapshotFile(*snapshot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "open snapshot:", err)
			os.Exit(1)
		}
		defer db.Close()
		g := db.Graph()
		if err := db.RegisterObjects(rnknn.DefaultCategory, gen.Uniform(g, *density, *seed)); err != nil {
			fmt.Fprintln(os.Stderr, "objects:", err)
			os.Exit(1)
		}
		handler, stats = singleServer(db, g, cfg, start)
	default:
		var methods []rnknn.Method
		for _, name := range strings.Split(*methodsFlag, ",") {
			m, err := rnknn.ParseMethod(strings.TrimSpace(name))
			if err != nil {
				usageExit("-methods: %v", err)
			}
			if m == rnknn.MethodAuto {
				usageExit("-methods: list concrete methods to build; requests pick auto per query")
			}
			methods = append(methods, m)
		}
		if len(methods) == 0 {
			usageExit("-methods is empty")
		}
		spec, ok := gen.LadderSpec(*network)
		if !ok {
			usageExit("unknown network %q", *network)
		}
		g := gen.Network(spec)
		if *timeW {
			g = g.View(graph.TravelTime)
		}
		opts := []rnknn.Option{
			rnknn.WithMethods(methods...),
			rnknn.WithObjects(rnknn.DefaultCategory, gen.Uniform(g, *density, *seed)),
		}
		if *indexCache != "" {
			opts = append(opts, rnknn.WithIndexCache(*indexCache))
			if *mmapFlag {
				opts = append(opts, rnknn.WithMmap())
			}
		}
		db, err := rnknn.Open(g, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "open:", err)
			os.Exit(1)
		}
		defer db.Close()
		handler, stats = singleServer(db, g, cfg, start)
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("rnknnd: listening on %s (max in-flight %d, cache %d entries)\n", *addr, *maxInflight, *cacheSize)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Println("rnknnd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
			os.Exit(1)
		}
	}
	stats()
}

// singleServer reports the open and wraps db in the single-DB serving
// stack, returning its handler and the exit-time stats printer.
func singleServer(db *rnknn.DB, g *rnknn.Graph, cfg serve.Config, start time.Time) (http.Handler, func()) {
	numObjects, _ := db.NumObjects(rnknn.DefaultCategory)
	fmt.Printf("rnknnd: network %s |V|=%d |E|=%d (%s weights), %d objects, methods %v, opened in %s\n",
		g.Name, g.NumVertices(), g.NumEdges()/2, g.Kind, numObjects, db.Methods(), time.Since(start).Round(time.Millisecond))
	srv := serve.New(db, cfg)
	return srv.Handler(), func() {
		stats := srv.Stats()
		fmt.Printf("rnknnd: served %d requests (%d shed, %d cache hits, %d coalesced)\n",
			stats.Requests, stats.Shed, stats.CacheHits, stats.Coalesced)
	}
}

func usageExit(format string, args ...any) {
	cliutil.UsageExit("valid methods: "+strings.Join(rnknn.MethodNames(), ", "), format, args...)
}
