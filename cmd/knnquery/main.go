// Command knnquery answers kNN queries on a generated network through the
// public rnknn API, printing results and basic timings — a minimal
// end-to-end exercise of the library.
//
// One query with a chosen method (or "auto" for the adaptive planner):
//
//	knnquery -network NW -method IER-PHL -k 10 -density 0.001 -q 123
//	knnquery -network NW -method auto -k 10 -density 0.001
//
// Batch mode reads one query vertex per line (blank lines and #-comments
// skipped) and runs them all through db.Batch, printing per-query latency:
//
//	knnquery -network NW -method auto -k 10 -batch queries.txt
//
// Route mode replays a moving query: the file lists one route vertex per
// line, and db.Monitor streams result-set deltas along it, printing each
// step's refresh verdict and events plus the session's avoided/re-run
// split — the offline twin of rnknnd's /monitor endpoint:
//
//	knnquery -network NW -k 10 -density 0.001 -route route.txt
//
// -json switches stdout to the serving layer's wire encoding (one
// serve.KNNResponse object, a serve.BatchResponse in batch mode, or one
// serve.MonitorStepJSON per line plus a serve.MonitorSummaryJSON in route
// mode), so scripts parse the same shapes whether they query the binary or
// a running rnknnd.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rnknn/internal/cliutil"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/serve"
	"rnknn/pkg/rnknn"
)

func main() {
	var (
		network = flag.String("network", "NW", "ladder network name")
		method  = flag.String("method", "Gtree", "method name (auto, "+strings.Join(rnknn.MethodNames(), ", ")+")")
		k       = flag.Int("k", 10, "number of neighbors (> 0)")
		density = flag.Float64("density", 0.001, "uniform object density in (0,1]")
		q       = flag.Int("q", -1, "query vertex (default: middle vertex)")
		batch   = flag.String("batch", "", "file of query vertices (one per line) to run through db.Batch")
		route   = flag.String("route", "", "file of route vertices (one per line) to replay through db.Monitor")
		workers = flag.Int("workers", 0, "batch worker pool size (default GOMAXPROCS)")
		timeW   = flag.Bool("traveltime", false, "use travel-time weights")
		asJSON  = flag.Bool("json", false, "print results as JSON (the rnknnd wire encoding)")
	)
	flag.Parse()

	if *k <= 0 {
		usageExit("-k must be > 0, got %d", *k)
	}
	if *density <= 0 || *density > 1 {
		usageExit("-density must be in (0,1], got %g", *density)
	}
	m, err := rnknn.ParseMethod(*method)
	if err != nil {
		usageExit("%v", err)
	}
	spec, ok := gen.LadderSpec(*network)
	if !ok {
		usageExit("unknown network %q", *network)
	}
	g := gen.Network(spec)
	if *timeW {
		g = g.View(graph.TravelTime)
	}

	// MethodAuto needs a spread of methods to plan across; a fixed method
	// builds only its own index.
	methods := []rnknn.Method{m}
	if m == rnknn.MethodAuto {
		methods = []rnknn.Method{rnknn.INE, rnknn.IERDijk, rnknn.Gtree}
	}
	start := time.Now()
	db, err := rnknn.Open(g,
		rnknn.WithMethods(methods...),
		rnknn.WithObjects(rnknn.DefaultCategory, gen.Uniform(g, *density, 42)),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	buildTime := time.Since(start)

	if !*asJSON {
		numObjects, _ := db.NumObjects(rnknn.DefaultCategory)
		fmt.Printf("network %s: |V|=%d |E|=%d (%s weights)\n", spec.Name, g.NumVertices(), g.NumEdges()/2, g.Kind)
		fmt.Printf("objects: %d (density %g)\n", numObjects, *density)
		fmt.Printf("method %s built in %s\n", m, buildTime.Round(time.Millisecond))
	}

	if *batch != "" && *route != "" {
		usageExit("-batch and -route are mutually exclusive")
	}
	if *batch != "" {
		runBatch(db, m, *batch, *k, *workers, *asJSON)
		return
	}
	if *route != "" {
		runRoute(db, m, *route, *k, *asJSON)
		return
	}

	qv := int32(*q)
	if qv < 0 || int(qv) >= g.NumVertices() {
		qv = int32(g.NumVertices() / 2)
	}
	if m == rnknn.MethodAuto && !*asJSON {
		plan, err := db.Explain(qv, *k, rnknn.WithMethod(m))
		if err != nil {
			fmt.Fprintln(os.Stderr, "explain:", err)
			os.Exit(1)
		}
		fmt.Printf("planner: %s (%s)\n", plan.Method, plan.Reason)
	}
	start = time.Now()
	results, epoch, err := db.KNNPinned(context.Background(), qv, *k, rnknn.WithMethod(m))
	if err != nil {
		fmt.Fprintln(os.Stderr, "query:", err)
		os.Exit(1)
	}
	queryTime := time.Since(start)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(serve.KNNResponse{
			Query:         qv,
			K:             *k,
			Method:        m.String(),
			Category:      rnknn.DefaultCategory,
			Epoch:         epoch,
			LatencyMicros: queryTime.Microseconds(),
			Results:       serve.Results(results),
		})
	} else {
		fmt.Printf("query from vertex %d took %s\n", qv, queryTime)
		for i, r := range results {
			fmt.Printf("  %2d. vertex %-8d network distance %d\n", i+1, r.Vertex, r.Dist)
		}
	}
	want, err := db.BruteForceKNN(qv, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
	switch {
	case rnknn.SameResults(results, want):
		if !*asJSON {
			fmt.Println("verified against brute-force expansion: OK")
		}
	case *asJSON:
		fmt.Fprintln(os.Stderr, "MISMATCH vs brute force:", rnknn.FormatResults(want))
		os.Exit(1)
	default:
		fmt.Println("MISMATCH vs brute force:", rnknn.FormatResults(want))
	}
}

// runBatch reads query vertices from path and runs them as one db.Batch,
// printing per-query latency and a throughput summary (or, with -json, the
// rnknnd /batch wire encoding).
func runBatch(db *rnknn.DB, m rnknn.Method, path string, k, workers int, asJSON bool) {
	vertices, err := readVertices(path, db.Graph().NumVertices())
	if err != nil {
		usageExit("-batch: %v", err)
	}
	if len(vertices) == 0 {
		usageExit("-batch: %s contains no query vertices", path)
	}
	b := db.Batch().Workers(workers)
	for _, v := range vertices {
		b.AddKNN(v, k, rnknn.WithMethod(m))
	}
	start := time.Now()
	results, err := b.Run(context.Background())
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "batch:", err)
		os.Exit(1)
	}
	if asJSON {
		resp := serve.BatchResponse{Results: make([]serve.BatchResultJSON, len(results))}
		for i, r := range results {
			out := serve.BatchResultJSON{Query: r.Query, LatencyMicros: r.Latency.Microseconds()}
			if r.Err != nil {
				out.Error = r.Err.Error()
			} else {
				out.Method = r.Method.String()
				out.Results = serve.Results(r.Results)
			}
			resp.Results[i] = out
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
		return
	}
	var sum time.Duration
	failed := 0
	for i, r := range results {
		if r.Err != nil {
			failed++
			fmt.Printf("  %4d. q=%-8d ERROR %v\n", i+1, r.Query, r.Err)
			continue
		}
		sum += r.Latency
		fmt.Printf("  %4d. q=%-8d method %-8s latency %-12s nearest %s\n",
			i+1, r.Query, r.Method, r.Latency, rnknn.FormatResults(r.Results[:min(1, len(r.Results))]))
	}
	ok := len(results) - failed
	fmt.Printf("batch: %d queries (%d failed) in %s wall", len(results), failed, wall.Round(time.Microsecond))
	if ok > 0 {
		fmt.Printf("; mean latency %s; %.0f queries/s",
			(sum / time.Duration(ok)).Round(time.Microsecond),
			float64(ok)/wall.Seconds())
	}
	fmt.Println()
}

// runRoute replays a route file through db.Monitor, printing one line per
// step (refresh verdict plus events) and the session's avoided/re-run
// summary — or, with -json, one serve.MonitorStepJSON per step and a
// closing serve.MonitorSummaryJSON.
func runRoute(db *rnknn.DB, m rnknn.Method, path string, k int, asJSON bool) {
	routeVertices, err := readVertices(path, db.Graph().NumVertices())
	if err != nil {
		usageExit("-route: %v", err)
	}
	if len(routeVertices) == 0 {
		usageExit("-route: %s contains no route vertices", path)
	}
	enc := json.NewEncoder(os.Stdout)
	start := time.Now()
	for u, err := range db.Monitor(context.Background(), routeVertices, k, rnknn.WithMethod(m)) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "monitor:", err)
			os.Exit(1)
		}
		if asJSON {
			_ = enc.Encode(serve.MonitorStep(u))
			continue
		}
		fmt.Printf("  step %4d  vertex %-8d epoch %-3d %-8s", u.Step, u.Vertex, u.Epoch, u.Refresh)
		for _, e := range u.Events {
			switch e.Kind {
			case rnknn.MonitorExit:
				fmt.Printf("  -%d", e.Object)
			case rnknn.MonitorEnter:
				fmt.Printf("  +%d:%d", e.Object, e.Dist)
			default:
				fmt.Printf("  ~%d:%d", e.Object, e.Dist)
			}
		}
		fmt.Println()
	}
	wall := time.Since(start)
	ms := db.MonitorStats()
	summary := serve.MonitorSummaryJSON{
		K:         k,
		Category:  rnknn.DefaultCategory,
		Steps:     int(ms.Steps),
		Avoided:   int(ms.Avoided),
		Refreshes: int(ms.Refreshes),
	}
	if summary.Steps > 0 {
		summary.AvoidedRatio = float64(summary.Avoided) / float64(summary.Steps)
	}
	if asJSON {
		_ = enc.Encode(summary)
		return
	}
	fmt.Printf("route: %d steps in %s; %d avoided by safe-region check, %d refreshes (%.0f%% avoided)\n",
		summary.Steps, wall.Round(time.Microsecond), summary.Avoided, summary.Refreshes, 100*summary.AvoidedRatio)
}

// readVertices parses one query vertex per line; blank lines and lines
// starting with # are skipped.
func readVertices(path string, numVertices int) ([]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []int32
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %q is not a vertex id", path, line, s)
		}
		if v < 0 || v >= numVertices {
			return nil, fmt.Errorf("%s:%d: vertex %d out of range [0,%d)", path, line, v, numVertices)
		}
		out = append(out, int32(v))
	}
	return out, sc.Err()
}

// usageExit routes invalid flag values through the shared convention,
// appending the valid method names.
func usageExit(format string, args ...any) {
	cliutil.UsageExit("valid methods: auto, "+strings.Join(rnknn.MethodNames(), ", "), format, args...)
}
