// Command knnquery answers one kNN query on a generated network with a
// chosen method, printing the results and basic timings — a minimal
// end-to-end exercise of the library.
//
//	knnquery -network NW -method IER-PHL -k 10 -density 0.001 -q 123
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rnknn/internal/core"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

func main() {
	var (
		network = flag.String("network", "NW", "ladder network name")
		method  = flag.String("method", "Gtree", "method name (INE, IER-Dijk, IER-CH, IER-TNR, IER-PHL, IER-Gt, Gtree, ROAD, DisBrw)")
		k       = flag.Int("k", 10, "number of neighbors")
		density = flag.Float64("density", 0.001, "uniform object density")
		q       = flag.Int("q", -1, "query vertex (default: random)")
		timeW   = flag.Bool("traveltime", false, "use travel-time weights")
	)
	flag.Parse()

	spec, ok := gen.LadderSpec(*network)
	if !ok {
		fmt.Fprintln(os.Stderr, "unknown network", *network)
		os.Exit(1)
	}
	g := gen.Network(spec)
	if *timeW {
		g = g.View(graph.TravelTime)
	}
	var kind core.MethodKind
	found := false
	for _, c := range core.Kinds() {
		if c.String() == *method {
			kind, found = c, true
		}
	}
	if !found {
		fmt.Fprintln(os.Stderr, "unknown method", *method)
		os.Exit(1)
	}

	e := core.New(g)
	objs := knn.NewObjectSet(g, gen.Uniform(g, *density, 42))
	start := time.Now()
	m, err := e.NewMethod(kind, objs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "build:", err)
		os.Exit(1)
	}
	buildTime := time.Since(start)

	qv := int32(*q)
	if qv < 0 || int(qv) >= g.NumVertices() {
		qv = int32(g.NumVertices() / 2)
	}
	start = time.Now()
	results := m.KNN(qv, *k)
	queryTime := time.Since(start)

	fmt.Printf("network %s: |V|=%d |E|=%d (%s weights)\n", spec.Name, g.NumVertices(), g.NumEdges()/2, g.Kind)
	fmt.Printf("objects: %d (density %g)\n", objs.Len(), *density)
	fmt.Printf("method %s built in %s; query from vertex %d took %s\n", m.Name(), buildTime.Round(time.Millisecond), qv, queryTime)
	for i, r := range results {
		fmt.Printf("  %2d. vertex %-8d network distance %d\n", i+1, r.Vertex, r.Dist)
	}
	want := knn.BruteForce(g, objs, qv, *k)
	if knn.SameResults(results, want) {
		fmt.Println("verified against brute-force expansion: OK")
	} else {
		fmt.Println("MISMATCH vs brute force:", knn.FormatResults(want))
	}
}
