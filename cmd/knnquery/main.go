// Command knnquery answers one kNN query on a generated network with a
// chosen method through the public rnknn API, printing the results and
// basic timings — a minimal end-to-end exercise of the library.
//
//	knnquery -network NW -method IER-PHL -k 10 -density 0.001 -q 123
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rnknn/internal/cliutil"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/pkg/rnknn"
)

func main() {
	var (
		network = flag.String("network", "NW", "ladder network name")
		method  = flag.String("method", "Gtree", "method name ("+strings.Join(rnknn.MethodNames(), ", ")+")")
		k       = flag.Int("k", 10, "number of neighbors (> 0)")
		density = flag.Float64("density", 0.001, "uniform object density in (0,1]")
		q       = flag.Int("q", -1, "query vertex (default: middle vertex)")
		timeW   = flag.Bool("traveltime", false, "use travel-time weights")
	)
	flag.Parse()

	if *k <= 0 {
		usageExit("-k must be > 0, got %d", *k)
	}
	if *density <= 0 || *density > 1 {
		usageExit("-density must be in (0,1], got %g", *density)
	}
	m, err := rnknn.ParseMethod(*method)
	if err != nil {
		usageExit("%v", err)
	}
	spec, ok := gen.LadderSpec(*network)
	if !ok {
		usageExit("unknown network %q", *network)
	}
	g := gen.Network(spec)
	if *timeW {
		g = g.View(graph.TravelTime)
	}

	start := time.Now()
	db, err := rnknn.Open(g,
		rnknn.WithMethods(m),
		rnknn.WithObjects(rnknn.DefaultCategory, gen.Uniform(g, *density, 42)),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	buildTime := time.Since(start)

	qv := int32(*q)
	if qv < 0 || int(qv) >= g.NumVertices() {
		qv = int32(g.NumVertices() / 2)
	}
	start = time.Now()
	results, err := db.KNN(context.Background(), qv, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "query:", err)
		os.Exit(1)
	}
	queryTime := time.Since(start)

	numObjects, _ := db.NumObjects(rnknn.DefaultCategory)
	fmt.Printf("network %s: |V|=%d |E|=%d (%s weights)\n", spec.Name, g.NumVertices(), g.NumEdges()/2, g.Kind)
	fmt.Printf("objects: %d (density %g)\n", numObjects, *density)
	fmt.Printf("method %s built in %s; query from vertex %d took %s\n", m, buildTime.Round(time.Millisecond), qv, queryTime)
	for i, r := range results {
		fmt.Printf("  %2d. vertex %-8d network distance %d\n", i+1, r.Vertex, r.Dist)
	}
	want, err := db.BruteForceKNN(qv, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
	if rnknn.SameResults(results, want) {
		fmt.Println("verified against brute-force expansion: OK")
	} else {
		fmt.Println("MISMATCH vs brute force:", rnknn.FormatResults(want))
	}
}

// usageExit routes invalid flag values through the shared convention,
// appending the valid method names.
func usageExit(format string, args ...any) {
	cliutil.UsageExit("valid methods: "+strings.Join(rnknn.MethodNames(), ", "), format, args...)
}
